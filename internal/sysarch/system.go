// Package sysarch models the real DDR4-based system of the paper's §6
// demonstration: an Intel Comet-Lake-like processor (4 GHz, open-row
// FR-FCFS memory controller, DRAMA-recoverable address mapping) attached
// to a TRR-protected DDR4 DIMM. The attack in internal/attack drives this
// model; the latency-probe path reproduces the §6.3 tAggON verification
// (Fig. 24).
package sysarch

import (
	"fmt"
	"math"

	"repro/internal/addrmap"
	"repro/internal/disturb"
	"repro/internal/dram"
	"repro/internal/stats"
)

// CPU timing constants for the latency model (a 4 GHz Comet Lake-like
// part: cycles = ns × 4).
const (
	CyclesPerNs = 4
	// RowHitNs is the load-to-use latency of an LLC-miss that hits an open
	// DRAM row; RowMissExtraNs is the added ACT+PRE penalty. The ~30-cycle
	// gap between the two is what Fig. 24 measures.
	RowHitNs       = 50
	RowMissExtraNs = 7 // ns: tRP + tRCD on the critical path ≈ 30 cycles
	CacheHitCycles = 40
)

// DemoDIMMParams returns the disturbance parameters of the demonstration
// DIMM (a Samsung 8Gb C-die module, §6.1). The thresholds are tuned so the
// real-system experiment reproduces Fig. 23's shape: conventional
// RowHammer stays under the flip threshold within a refresh window, while
// multi-cache-block access patterns (large tAggON) flip ~10 % of victims.
func DemoDIMMParams() disturb.Params {
	p := disturb.DefaultParams()
	// Hammer thresholds sit above the ~180K effective activations a full
	// TRR-bypassed refresh window of double-sided hammering delivers at two
	// activations per iteration, so conventional RowHammer barely dents the
	// DIMM (Fig. 23: 0 flips at NUM_AGGR_ACTS ∈ {2,3}, a handful at 4).
	p.HammerCellsPerRow = 48
	p.HammerLogMedian = 15.05 // tail calibrated to ~0.5 % of rows at ACTS=4
	p.HammerLogSigma = 0.6
	// Sparse press-weak cells with thresholds around the ~7 ms exposure the
	// peak RowPress configuration accumulates per refresh window.
	p.PressCellsPerRow = 3
	p.PressLogMedian = -3.94 // median K ≈ 19.5 ms
	p.PressLogSigma = 0.8
	return p
}

// System is the demonstration machine: one DDR4 channel with an open-row
// memory controller, TRR in the DIMM, and periodic refresh.
type System struct {
	Mod   *dram.Module
	Model *disturb.Model
	Map   addrmap.SysMap

	TRREntries int // in-DRAM sampler size

	now      dram.TimePS
	openRow  []int // per-bank open row, -1 when precharged
	noiseRNG *stats.RNG
}

// NewDemoSystem builds the §6.1 system over the given geometry. seed
// drives the DIMM's chip-to-chip variation.
func NewDemoSystem(geo dram.Geometry, seed uint64) (*System, error) {
	sysMap, err := addrmap.NewCometLakeMap(geo.Banks, geo.RowsPerBank, geo.BlocksPerRow())
	if err != nil {
		return nil, fmt.Errorf("sysarch: %w", err)
	}
	model := disturb.NewModel(DemoDIMMParams(), geo, seed)
	// Systems run warmer than the 50 °C characterization baseline.
	const tempC = 60
	model.SetEvalTemperature(tempC)
	mod := dram.NewModule(geo, dram.DDR4(), tempC, model)
	open := make([]int, geo.Banks)
	for i := range open {
		open[i] = -1
	}
	return &System{
		Mod:        mod,
		Model:      model,
		Map:        sysMap,
		TRREntries: 4,
		openRow:    open,
		noiseRNG:   stats.NewRNG(seed ^ 0x5A5A),
	}, nil
}

// Now returns the system clock (simulated picoseconds).
func (s *System) Now() dram.TimePS { return s.now }

// Advance moves the clock forward.
func (s *System) Advance(d dram.TimePS) {
	if d > 0 {
		s.now += d
	}
}

// OpenRow returns the open row of a bank (-1 when precharged).
func (s *System) OpenRow(bank int) int { return s.openRow[bank] }

// AccessBlock performs one LLC-missing load to (bank, row): the memory
// controller opens the row if needed (closing any conflicting open row —
// this is where an aggressor's tAggON ends and its disturbance lands) and
// serves the block from the row buffer. It returns the load latency in CPU
// cycles. Open-row policy: the row stays open afterwards.
func (s *System) AccessBlock(bank, row int) (int, error) {
	latencyNs := float64(RowHitNs)
	if s.openRow[bank] != row {
		if err := s.CloseRow(bank); err != nil {
			return 0, err
		}
		// tRP elapses before the ACT, then the activation penalty shows up
		// in the load latency.
		s.now += s.Mod.Timing.TRP
		if err := s.Mod.Activate(s.now, bank, row); err != nil {
			return 0, err
		}
		s.openRow[bank] = row
		latencyNs += RowMissExtraNs
	}
	s.now += dram.TimePS(latencyNs) * dram.Nanosecond / 2 // pipelined occupancy ≈ half the latency
	// Measurement noise: ±2 cycles of scheduling jitter.
	noise := (s.noiseRNG.Float64() - 0.5) * 4
	return int(math.Round(latencyNs*CyclesPerNs + noise)), nil
}

// CloseRow precharges the bank's open row, if any. The elapsed open time
// becomes the closing row's tAggON in the disturbance model.
func (s *System) CloseRow(bank int) error {
	if s.openRow[bank] < 0 {
		return nil
	}
	// Respect tRAS: a row cannot close earlier than tRAS after opening.
	preAt := s.now
	if err := s.Mod.Precharge(preAt, bank); err != nil {
		var te *dram.TimingError
		if asTimingErr(err, &te) {
			// Too early: wait out tRAS.
			preAt = s.now + s.Mod.Timing.TRAS
			if err2 := s.Mod.Precharge(preAt, bank); err2 != nil {
				return err2
			}
			s.now = preAt
		} else {
			return err
		}
	}
	s.openRow[bank] = -1
	return nil
}

func asTimingErr(err error, target **dram.TimingError) bool {
	te, ok := err.(*dram.TimingError)
	if ok {
		*target = te
	}
	return ok
}

// ProbeRowLatencies reproduces the §6.3 verification program: ensure the
// probed row is closed (by touching another row in the same bank), then
// access every cache block of the row in sequence, returning the per-block
// latencies in cycles. The first access pays the activation penalty; the
// rest hit the open row — proof that the MC keeps the row open.
func (s *System) ProbeRowLatencies(bank, row int) ([]int, error) {
	other := (row + s.Mod.Geo.RowsPerBank/2) % s.Mod.Geo.RowsPerBank
	if _, err := s.AccessBlock(bank, other); err != nil {
		return nil, err
	}
	blocks := s.Mod.Geo.BlocksPerRow()
	lat := make([]int, 0, blocks)
	for b := 0; b < blocks; b++ {
		l, err := s.AccessBlock(bank, row)
		if err != nil {
			return nil, err
		}
		lat = append(lat, l)
	}
	return lat, nil
}
