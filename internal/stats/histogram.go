package stats

import "math"

// Histogram is a fixed-bin-width histogram over [Lo, Hi) with overflow and
// underflow buckets, used for the latency histogram of Fig. 24 and the
// repeatability plots of Appendix E.
type Histogram struct {
	Lo, Hi    float64
	BinWidth  float64
	Counts    []int
	Underflow int
	Overflow  int
	Total     int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics on a non-positive bin count or an empty range.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram configuration")
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		BinWidth: (hi - lo) / float64(bins),
		Counts:   make([]int, bins),
	}
}

// Add records a single observation.
func (h *Histogram) Add(v float64) {
	h.Total++
	switch {
	case v < h.Lo:
		h.Underflow++
	case v >= h.Hi:
		h.Overflow++
	default:
		idx := int((v - h.Lo) / h.BinWidth)
		if idx >= len(h.Counts) { // guard rounding at the upper edge
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Frequencies returns each bin count divided by the total observation count
// (including under/overflow), or all zeros when empty.
func (h *Histogram) Frequencies() []float64 {
	fs := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return fs
	}
	for i, c := range h.Counts {
		fs[i] = float64(c) / float64(h.Total)
	}
	return fs
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth
}

// Median returns an approximate median from binned data (midpoint of the
// bin containing the 50th percentile); NaN when empty.
func (h *Histogram) Median() float64 {
	if h.Total == 0 {
		return math.NaN()
	}
	target := (h.Total + 1) / 2
	seen := h.Underflow
	if seen >= target {
		return h.Lo
	}
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			return h.BinCenter(i)
		}
	}
	return h.Hi
}
