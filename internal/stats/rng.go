// Package stats provides the deterministic random sampling, descriptive
// statistics, and regression helpers used throughout the RowPress
// reproduction. All randomness is derived from explicit 64-bit seeds via
// SplitMix64 so every experiment is exactly reproducible.
package stats

import "math"

// SplitMix64 advances the SplitMix64 state and returns the next 64-bit
// value. It is the canonical generator from Steele et al. and is used both
// as a stream RNG and as a mixing function for hash-derived sampling.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 hashes x through one SplitMix64 round without carrying state.
// It is the building block for position-addressed sampling: hashing a
// (module, bank, row, column, stream) tuple yields the same value forever.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Combine folds several values into a single hash. The fold is order
// sensitive, so Combine(a, b) != Combine(b, a) in general.
func Combine(vs ...uint64) uint64 {
	h := uint64(0x8EBC6AF09C88C6E3)
	for _, v := range vs {
		h = Mix64(h ^ v)
	}
	return h
}

// RNG is a small deterministic generator around SplitMix64.
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// State returns the generator's current internal state, for
// checkpoint/restore of consumers that must replay deterministically.
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds (or advances) the generator to a previously captured
// state.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 { return SplitMix64(&r.state) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// LogNormal returns exp(mu + sigma*Z) for standard normal Z.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson returns a Poisson variate with mean lambda. For large lambda it
// falls back to a normal approximation, which is adequate for cell-count
// sampling.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// UnitFromHash maps a hash value to a uniform float64 in (0, 1), never
// returning exactly 0 so it can feed inverse-CDF transforms safely.
func UnitFromHash(h uint64) float64 {
	u := float64(h>>11) / (1 << 53)
	if u <= 0 {
		return 0.5 / (1 << 53)
	}
	return u
}

// NormalFromHash derives a standard normal variate from a single hash by
// splitting it into two uniforms (Box-Muller). Deterministic per hash.
func NormalFromHash(h uint64) float64 {
	u1 := UnitFromHash(h)
	u2 := UnitFromHash(Mix64(h))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormalFromHash derives a log-normal variate exp(mu+sigma*Z) from a hash.
func LogNormalFromHash(h uint64, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*NormalFromHash(h))
}
