package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	fit := FitLine(xs, ys)
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if fit := FitLine([]float64{1}, []float64{2}); fit.Slope != 0 {
		t.Error("single point should produce zero fit")
	}
	if fit := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); fit.Slope != 0 {
		t.Error("zero-variance x should produce zero fit")
	}
}

func TestFitLogLogPowerLaw(t *testing.T) {
	// y = 50/x should fit slope -1 in log-log space, mirroring the paper's
	// ACmin ~ 1/tAggON trend.
	var xs, ys []float64
	for x := 1.0; x <= 1e6; x *= 10 {
		xs = append(xs, x)
		ys = append(ys, 50/x)
	}
	fit := FitLogLog(xs, ys)
	if math.Abs(fit.Slope+1) > 1e-9 {
		t.Fatalf("log-log slope = %v, want -1", fit.Slope)
	}
}

func TestFitLogLogSkipsNonPositive(t *testing.T) {
	fit := FitLogLog([]float64{-1, 0, 1, 10, 100}, []float64{5, 5, 100, 10, 1})
	if math.Abs(fit.Slope+1) > 1e-9 {
		t.Fatalf("slope = %v, want -1 after skipping bad points", fit.Slope)
	}
}

func TestFitLineRecoversRandomLine(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		slope := (r.Float64() - 0.5) * 20
		intercept := (r.Float64() - 0.5) * 100
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = slope*xs[i] + intercept
		}
		fit := FitLine(xs, ys)
		return math.Abs(fit.Slope-slope) < 1e-6 && math.Abs(fit.Intercept-intercept) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
