package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics used by the paper's
// box-and-whiskers plots (Figs. 1, 25, 26) and error bands (Figs. 6, 9, 17).
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
}

// IQR returns the interquartile range (box size).
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// Describe computes a Summary over vs. It returns a zero Summary when vs is
// empty. The quartile convention matches the paper's footnote 2: Q1 is the
// median of the lower half and Q3 the median of the upper half of the
// ordered data (Tukey hinges, excluding the middle element for odd n).
func Describe(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)

	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}

	half := n / 2
	lower := sorted[:half]
	upper := sorted[n-half:]
	if half == 0 { // single element: quartiles collapse onto the median
		lower, upper = sorted, sorted
	}
	return Summary{
		N:      n,
		Min:    sorted[0],
		Q1:     medianSorted(lower),
		Median: medianSorted(sorted),
		Q3:     medianSorted(upper),
		Max:    sorted[n-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
	}
}

func medianSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	// Average the two middle elements without overflowing near MaxFloat64.
	return sorted[n/2-1]/2 + sorted[n/2]/2
}

// Mean returns the arithmetic mean of vs, or NaN when empty.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// GeoMean returns the geometric mean of vs (all values must be positive),
// used for the normalized IPC aggregation in Appendix D.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, v := range vs {
		if v <= 0 {
			return math.NaN()
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vs)))
}

// Min returns the minimum of vs, or +Inf when empty.
func Min(vs []float64) float64 {
	m := math.Inf(1)
	for _, v := range vs {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of vs, or -Inf when empty.
func Max(vs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
