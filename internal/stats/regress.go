package stats

import "math"

// LinearFit holds an ordinary-least-squares line y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine fits y = a*x + b by least squares. It returns a zero fit when
// fewer than two points are supplied or x has no variance.
func FitLine(xs, ys []float64) LinearFit {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return LinearFit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return LinearFit{}
	}
	slope := (fn*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / fn

	// Coefficient of determination.
	meanY := sy / fn
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// FitLogLog fits log10(y) = Slope*log10(x) + Intercept, skipping
// non-positive points. This regenerates the paper's ACmin trend-line slopes
// (≈ −1.02 for tAggON ≥ 7.8 µs, Obsv. 3).
func FitLogLog(xs, ys []float64) LinearFit {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log10(xs[i]))
			ly = append(ly, math.Log10(ys[i]))
		}
	}
	return FitLine(lx, ly)
}
