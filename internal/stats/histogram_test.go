package stats

import (
	"math"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count = %d, want 1", i, c)
		}
	}
	if h.Total != 10 {
		t.Fatalf("total = %d", h.Total)
	}
}

func TestHistogramOverUnderflow(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-1)
	h.Add(10) // hi edge is exclusive
	h.Add(100)
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under=%d over=%d", h.Underflow, h.Overflow)
	}
}

func TestHistogramFrequenciesSumToOneMinusTails(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) / 10)
	}
	var sum float64
	for _, f := range h.Frequencies() {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("frequencies sum = %v, want 1", sum)
	}
}

func TestHistogramMedian(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 99; i++ {
		h.Add(float64(i))
	}
	med := h.Median()
	if math.Abs(med-49.5) > 1.0 {
		t.Fatalf("median = %v, want ~49.5", med)
	}
	empty := NewHistogram(0, 1, 2)
	if !math.IsNaN(empty.Median()) {
		t.Fatal("empty histogram median should be NaN")
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h.BinCenter(0) != 0.5 || h.BinCenter(9) != 9.5 {
		t.Fatalf("bin centers wrong: %v %v", h.BinCenter(0), h.BinCenter(9))
	}
}
