package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDescribeEmpty(t *testing.T) {
	s := Describe(nil)
	if s.N != 0 {
		t.Fatalf("empty describe N = %d", s.N)
	}
}

func TestDescribeSingle(t *testing.T) {
	s := Describe([]float64{5})
	if s.Min != 5 || s.Max != 5 || s.Median != 5 || s.Mean != 5 {
		t.Fatalf("single-element summary wrong: %+v", s)
	}
}

func TestDescribeKnown(t *testing.T) {
	// Classic Tukey-hinge example: 1..9 -> Q1=2.5 (median of 1..4),
	// median=5, Q3=7.5 (median of 6..9).
	s := Describe([]float64{9, 1, 8, 2, 7, 3, 6, 4, 5})
	if s.Median != 5 {
		t.Errorf("median = %v, want 5", s.Median)
	}
	if s.Q1 != 2.5 {
		t.Errorf("Q1 = %v, want 2.5", s.Q1)
	}
	if s.Q3 != 7.5 {
		t.Errorf("Q3 = %v, want 7.5", s.Q3)
	}
	if s.Min != 1 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if s.IQR() != 5 {
		t.Errorf("IQR = %v, want 5", s.IQR())
	}
}

func TestDescribeOrderingInvariant(t *testing.T) {
	// Property: Min <= Q1 <= Median <= Q3 <= Max for any input.
	f := func(raw []float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		s := Describe(vs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribePermutationInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vs = append(vs, v)
			}
		}
		if len(vs) < 2 {
			return true
		}
		a := Describe(vs)
		shuffled := append([]float64(nil), vs...)
		sort.Sort(sort.Reverse(sort.Float64Slice(shuffled)))
		b := Describe(shuffled)
		return a.Median == b.Median && a.Q1 == b.Q1 && a.Q3 == b.Q3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("GeoMean(1,100) = %v, want 10", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean with negative value should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("GeoMean of empty should be NaN")
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if Min([]float64{3, 1, 2}) != 1 {
		t.Error("Min wrong")
	}
	if Max([]float64{3, 1, 2}) != 3 {
		t.Error("Max wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be infinities")
	}
}

func TestMeanNaNOnEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
}
