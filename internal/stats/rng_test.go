package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	s1, s2 := uint64(42), uint64(42)
	for i := 0; i < 100; i++ {
		if SplitMix64(&s1) != SplitMix64(&s2) {
			t.Fatalf("SplitMix64 diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValue(t *testing.T) {
	// Reference value from the SplitMix64 reference implementation with
	// seed 0: first output is 0xE220A8397B1DCDAF.
	s := uint64(0)
	got := SplitMix64(&s)
	if got != 0xE220A8397B1DCDAF {
		t.Fatalf("SplitMix64(0) = %#x, want 0xE220A8397B1DCDAF", got)
	}
}

func TestMix64Injective(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine should be order sensitive")
	}
	if Combine(1, 2) != Combine(1, 2) {
		t.Fatal("Combine should be deterministic")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		r := NewRNG(uint64(lambda * 1000))
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.1 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	r := NewRNG(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
}

func TestUnitFromHashProperties(t *testing.T) {
	f := func(h uint64) bool {
		u := UnitFromHash(h)
		return u > 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalFromHashDeterministic(t *testing.T) {
	f := func(h uint64) bool {
		a := NormalFromHash(h)
		b := NormalFromHash(h)
		return a == b && !math.IsNaN(a) && !math.IsInf(a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalFromHashPositive(t *testing.T) {
	f := func(h uint64) bool {
		return LogNormalFromHash(h, 0, 1) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalMedianRoughly(t *testing.T) {
	// Median of LogNormal(mu, sigma) is exp(mu).
	r := NewRNG(77)
	const n = 100001
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.LogNormal(2, 0.5)
	}
	med := Describe(vs).Median
	want := math.Exp(2)
	if math.Abs(med-want)/want > 0.05 {
		t.Errorf("log-normal median = %v, want ~%v", med, want)
	}
}
