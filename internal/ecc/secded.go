// Package ecc implements the error-correcting codes the paper analyzes as
// RowPress mitigations (§7.1): the (72,64) SEC-DED code ubiquitous in
// server memory, the (7,4) Hamming code used as the paper's high-overhead
// strawman, and a Chipkill-style symbol code — plus the per-64-bit-word
// bitflip-multiplicity analysis behind Figs. 25 and 26.
package ecc

import "math/bits"

// SECDED is the (72,64) single-error-correct, double-error-detect code:
// a (71,64) Hamming code extended with an overall parity bit.
//
// Codeword layout (bit indices 0..71): bit 0 is the overall parity; bits
// 1..71 are Hamming positions 1..71, with check bits at the power-of-two
// positions {1,2,4,8,16,32,64} and the 64 data bits filling the rest.
type SECDED struct{}

// DecodeStatus classifies a decode outcome.
type DecodeStatus int

// Decode outcomes. Miscorrection (an uncorrectable pattern that aliases a
// correctable syndrome) is what turns heavy RowPress words into silent
// data corruption.
const (
	NoError DecodeStatus = iota
	Corrected
	Detected // uncorrectable but flagged
)

func (s DecodeStatus) String() string {
	switch s {
	case NoError:
		return "no-error"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return "unknown"
	}
}

// isPow2 reports whether p is a power of two (a Hamming check position).
func isPow2(p uint) bool { return p&(p-1) == 0 }

// dataPositions lists the 64 non-check Hamming positions in ascending
// order, computed once.
var dataPositions = func() [64]uint {
	var out [64]uint
	i := 0
	for p := uint(1); p <= 71; p++ {
		if !isPow2(p) {
			out[i] = p
			i++
		}
	}
	if i != 64 {
		panic("ecc: expected exactly 64 data positions")
	}
	return out
}()

// Codeword is a 72-bit SEC-DED codeword (bits 0..71 in the low bits).
type Codeword struct {
	Bits [72 / 8]byte
}

func (c *Codeword) get(i uint) bool { return c.Bits[i/8]&(1<<(i%8)) != 0 }
func (c *Codeword) flip(i uint)     { c.Bits[i/8] ^= 1 << (i % 8) }
func (c *Codeword) set(i uint, v bool) {
	if v {
		c.Bits[i/8] |= 1 << (i % 8)
	} else {
		c.Bits[i/8] &^= 1 << (i % 8)
	}
}

// Flip inverts codeword bit i (0..71); used for fault injection.
func (c *Codeword) Flip(i uint) {
	if i >= 72 {
		panic("ecc: codeword bit index out of range")
	}
	c.flip(i)
}

// Encode produces the 72-bit codeword for a 64-bit data word.
func (SECDED) Encode(data uint64) Codeword {
	var cw Codeword
	for i, pos := range dataPositions {
		cw.set(pos, data>>uint(i)&1 == 1)
	}
	// Hamming check bits: parity over covered positions.
	for _, cb := range [...]uint{1, 2, 4, 8, 16, 32, 64} {
		parity := false
		for p := uint(1); p <= 71; p++ {
			if p != cb && p&cb != 0 && cw.get(p) {
				parity = !parity
			}
		}
		cw.set(cb, parity)
	}
	// Overall parity over bits 1..71.
	overall := false
	for p := uint(1); p <= 71; p++ {
		if cw.get(p) {
			overall = !overall
		}
	}
	cw.set(0, overall)
	return cw
}

// Decode recovers the data word and classifies the error pattern. When the
// pattern has ≥3 bitflips the classification is unreliable: the code may
// report Corrected (a miscorrection — silent data corruption after a wrong
// "fix") or Detected. Callers compare the returned data against ground
// truth to detect miscorrection, as AnalyzeWord does.
func (SECDED) Decode(cw Codeword) (data uint64, status DecodeStatus) {
	syndrome := uint(0)
	for p := uint(1); p <= 71; p++ {
		if cw.get(p) {
			syndrome ^= p
		}
	}
	overall := cw.get(0)
	for p := uint(1); p <= 71; p++ {
		if cw.get(p) {
			overall = !overall
		}
	}
	// overall is now the total parity of bits 0..71: false means even
	// (consistent), true means an odd number of flipped bits.
	switch {
	case syndrome == 0 && !overall:
		status = NoError
	case syndrome == 0 && overall:
		// Error in the overall parity bit itself.
		cw.flip(0)
		status = Corrected
	case syndrome != 0 && overall:
		// Odd number of errors; assume single and correct it.
		if syndrome <= 71 {
			cw.flip(syndrome)
			status = Corrected
		} else {
			status = Detected
		}
	default: // syndrome != 0, even parity: double error
		status = Detected
	}
	for i, pos := range dataPositions {
		if cw.get(pos) {
			data |= 1 << uint(i)
		}
	}
	return data, status
}

// WordOutcome is the ground-truth-aware result of pushing an erroneous
// word through a code.
type WordOutcome int

// Outcomes against ground truth.
const (
	OutcomeClean     WordOutcome = iota // no flips
	OutcomeCorrected                    // decoder returned the original data
	OutcomeDetected                     // decoder flagged an uncorrectable error
	OutcomeSilent                       // decoder returned wrong data without flagging
)

func (o WordOutcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeCorrected:
		return "corrected"
	case OutcomeDetected:
		return "detected"
	default:
		return "silent-corruption"
	}
}

// EvaluateSECDED encodes data, applies the given codeword-bit flips, and
// classifies the end-to-end outcome against ground truth.
func EvaluateSECDED(data uint64, flipBits []uint) WordOutcome {
	if len(flipBits) == 0 {
		return OutcomeClean
	}
	var c SECDED
	cw := c.Encode(data)
	for _, b := range flipBits {
		cw.Flip(b)
	}
	got, status := c.Decode(cw)
	switch {
	case status == Detected:
		return OutcomeDetected
	case got == data:
		return OutcomeCorrected
	default:
		return OutcomeSilent
	}
}

// popcount64 counts set bits (helper shared by analysis code).
func popcount64(v uint64) int { return bits.OnesCount64(v) }
