package ecc

import "repro/internal/bender"

// WordStats buckets erroneous 64-bit words by bitflip multiplicity, the
// y-axis categories of Figs. 25 and 26: 1–2 flips (within SEC-DED's
// detect guarantee), 3–8, and more than 8.
type WordStats struct {
	Words1to2  int
	Words3to8  int
	WordsOver8 int
	MaxPerWord int
	TotalWords int
}

// GroupFlipsByWord turns a flip list into per-64-bit-word error masks.
func GroupFlipsByWord(flips []bender.Flip) map[[2]int]uint64 {
	words := make(map[[2]int]uint64)
	for _, f := range flips {
		key := [2]int{f.LogicalRow, f.Byte / 8}
		bit := uint(f.Byte%8)*8 + uint(f.Bit)
		words[key] |= 1 << bit
	}
	return words
}

// AnalyzeFlips computes the Fig. 25/26 multiplicity statistics from a raw
// flip list.
func AnalyzeFlips(flips []bender.Flip) WordStats {
	var st WordStats
	//lint:ignore rowpressvet/maprange integer tallies plus a running max over pure popcounts; every update commutes, so iteration order cannot change the stats
	for _, mask := range GroupFlipsByWord(flips) {
		n := popcount64(mask)
		st.TotalWords++
		switch {
		case n <= 2:
			st.Words1to2++
		case n <= 8:
			st.Words3to8++
		default:
			st.WordsOver8++
		}
		if n > st.MaxPerWord {
			st.MaxPerWord = n
		}
	}
	return st
}

// CodeOutcomes summarizes how a set of erroneous words fares under
// SEC-DED and Chipkill — the §7.1 argument that standard ECC cannot stop
// RowPress.
type CodeOutcomes struct {
	SECDEDCorrected int
	SECDEDDetected  int
	SECDEDSilent    int
	ChipkillBeyond  int // words beyond the Chipkill guarantee
}

// EvaluateCodes runs every erroneous word through SEC-DED (flipping the
// corresponding data bits of an encoded all-data word) and through the
// Chipkill classifier with the given symbol width.
func EvaluateCodes(flips []bender.Flip, symbolBits int) CodeOutcomes {
	var out CodeOutcomes
	ck := Chipkill{SymbolBits: symbolBits}
	//lint:ignore rowpressvet/maprange per-word classification is pure and the outcomes are integer counters; order-insensitive by commutativity
	for _, mask := range GroupFlipsByWord(flips) {
		// Map data-bit flips to their codeword positions.
		var flipBits []uint
		for i := uint(0); i < 64; i++ {
			if mask&(1<<i) != 0 {
				flipBits = append(flipBits, dataPositions[i])
			}
		}
		switch EvaluateSECDED(0xA5A5A5A5A5A5A5A5, flipBits) {
		case OutcomeCorrected:
			out.SECDEDCorrected++
		case OutcomeDetected:
			out.SECDEDDetected++
		case OutcomeSilent:
			out.SECDEDSilent++
		}
		if ck.Classify(mask) == OutcomeSilent {
			out.ChipkillBeyond++
		}
	}
	return out
}
