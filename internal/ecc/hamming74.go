package ecc

// Hamming74 is the (7,4) Hamming code the paper uses as its extreme-
// overhead strawman (§7.1): 3 parity bits per 4 data bits (75 % storage
// overhead), correcting one bitflip per 4-bit nibble — and still unable to
// correct the up-to-25 bitflips the paper observes in single 64-bit words.
type Hamming74 struct{}

// Encode maps a 4-bit nibble (low bits of data) to a 7-bit codeword
// (low bits of the result), positions 1..7 with checks at 1, 2, 4.
func (Hamming74) Encode(nibble byte) byte {
	d := [5]bool{} // 1-indexed data positions 3,5,6,7
	d[1] = nibble&1 != 0
	d[2] = nibble&2 != 0
	d[3] = nibble&4 != 0
	d[4] = nibble&8 != 0
	// Position layout: p1 p2 d1 p4 d2 d3 d4 (positions 1..7).
	bit := [8]bool{}
	bit[3], bit[5], bit[6], bit[7] = d[1], d[2], d[3], d[4]
	bit[1] = bit[3] != bit[5] != bit[7]
	bit[2] = bit[3] != bit[6] != bit[7]
	bit[4] = bit[5] != bit[6] != bit[7]
	var cw byte
	for p := uint(1); p <= 7; p++ {
		if bit[p] {
			cw |= 1 << (p - 1)
		}
	}
	return cw
}

// Decode recovers the nibble, correcting up to one flipped codeword bit.
func (Hamming74) Decode(cw byte) (nibble byte, status DecodeStatus) {
	bit := [8]bool{}
	for p := uint(1); p <= 7; p++ {
		bit[p] = cw&(1<<(p-1)) != 0
	}
	syndrome := uint(0)
	if bit[1] != bit[3] != bit[5] != bit[7] {
		syndrome |= 1
	}
	if bit[2] != bit[3] != bit[6] != bit[7] {
		syndrome |= 2
	}
	if bit[4] != bit[5] != bit[6] != bit[7] {
		syndrome |= 4
	}
	status = NoError
	if syndrome != 0 {
		bit[syndrome] = !bit[syndrome]
		status = Corrected
	}
	if bit[3] {
		nibble |= 1
	}
	if bit[5] {
		nibble |= 2
	}
	if bit[6] {
		nibble |= 4
	}
	if bit[7] {
		nibble |= 8
	}
	return nibble, status
}
