package ecc

// Chipkill models a symbol-based code of the Chipkill-correct family
// (footnote 24): it corrects any error confined to one DRAM chip's symbol
// and detects errors spanning two symbols. The paper's argument needs only
// the guarantee structure — with up to 25 bitflips in a 64-bit word, at
// least two (x16), four (x8), or seven (x4) chips' symbols are erroneous,
// beyond any Chipkill guarantee — so the model classifies by erroneous-
// symbol count rather than running a full Reed-Solomon decoder.
type Chipkill struct {
	// SymbolBits is the per-chip data width (4 for x4 DRAM, 8 for x8,
	// 16 for x16).
	SymbolBits int
}

// Classify returns the decode outcome for a 64-bit data word whose error
// pattern is errMask (bit i set = data bit i flipped). Symbols follow the
// chip interleaving: consecutive SymbolBits-wide fields.
func (c Chipkill) Classify(errMask uint64) WordOutcome {
	if errMask == 0 {
		return OutcomeClean
	}
	if c.SymbolBits <= 0 || 64%c.SymbolBits != 0 {
		panic("ecc: invalid Chipkill symbol width")
	}
	symbols := c.ErroneousSymbols(errMask)
	switch {
	case symbols == 1:
		return OutcomeCorrected
	case symbols == 2:
		return OutcomeDetected
	default:
		// Beyond the guarantee: the decoder may miscorrect silently.
		return OutcomeSilent
	}
}

// ErroneousSymbols counts the number of symbols containing at least one
// flipped bit.
func (c Chipkill) ErroneousSymbols(errMask uint64) int {
	mask := uint64(1)<<uint(c.SymbolBits) - 1
	n := 0
	for s := 0; s < 64/c.SymbolBits; s++ {
		if errMask>>(uint(s)*uint(c.SymbolBits))&mask != 0 {
			n++
		}
	}
	return n
}
