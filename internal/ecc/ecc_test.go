package ecc

import (
	"testing"
	"testing/quick"

	"repro/internal/bender"
	"repro/internal/stats"
)

func TestSECDEDRoundTrip(t *testing.T) {
	var c SECDED
	f := func(data uint64) bool {
		got, status := c.Decode(c.Encode(data))
		return got == data && status == NoError
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSECDEDCorrectsAnySingleBit(t *testing.T) {
	var c SECDED
	f := func(data uint64, pos uint8) bool {
		cw := c.Encode(data)
		cw.Flip(uint(pos) % 72)
		got, status := c.Decode(cw)
		return got == data && status == Corrected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSECDEDDetectsAnyDoubleBit(t *testing.T) {
	var c SECDED
	f := func(data uint64, a, b uint8) bool {
		pa, pb := uint(a)%72, uint(b)%72
		if pa == pb {
			return true
		}
		cw := c.Encode(data)
		cw.Flip(pa)
		cw.Flip(pb)
		_, status := c.Decode(cw)
		return status == Detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSECDEDFailsOnHeavyWords is the §7.1 argument: words with many
// RowPress flips defeat SEC-DED — either detected-uncorrectable or, worse,
// silently miscorrected.
func TestSECDEDFailsOnHeavyWords(t *testing.T) {
	silent, detected := 0, 0
	rng := stats.NewRNG(99)
	for trial := 0; trial < 500; trial++ {
		seen := map[uint]bool{}
		var flips []uint
		for len(flips) < 5 {
			p := uint(rng.Intn(72))
			if !seen[p] {
				seen[p] = true
				flips = append(flips, p)
			}
		}
		switch EvaluateSECDED(0xDEADBEEFCAFEF00D, flips) {
		case OutcomeSilent:
			silent++
		case OutcomeDetected:
			detected++
		case OutcomeCorrected:
			t.Fatal("5-bit error pattern reported as correctly corrected")
		}
	}
	if silent == 0 {
		t.Error("no silent miscorrections over 500 5-bit patterns; expected some")
	}
	if detected == 0 {
		t.Error("no detections over 500 5-bit patterns")
	}
}

func TestHamming74RoundTrip(t *testing.T) {
	var h Hamming74
	for n := byte(0); n < 16; n++ {
		got, status := h.Decode(h.Encode(n))
		if got != n || status != NoError {
			t.Fatalf("nibble %d: got %d status %v", n, got, status)
		}
	}
}

func TestHamming74CorrectsSingleBit(t *testing.T) {
	var h Hamming74
	for n := byte(0); n < 16; n++ {
		for bit := uint(0); bit < 7; bit++ {
			cw := h.Encode(n) ^ (1 << bit)
			got, status := h.Decode(cw)
			if got != n || status != Corrected {
				t.Fatalf("nibble %d bit %d: got %d status %v", n, bit, got, status)
			}
		}
	}
}

func TestChipkillClassification(t *testing.T) {
	ck := Chipkill{SymbolBits: 8} // x8 chips
	cases := []struct {
		mask uint64
		want WordOutcome
	}{
		{0, OutcomeClean},
		{0xFF, OutcomeCorrected},                   // all errors in one symbol
		{0x1_0000_0001, OutcomeDetected},           // two symbols
		{0x01_01_01_00_00_00_00_00, OutcomeSilent}, // three symbols
	}
	for _, c := range cases {
		if got := ck.Classify(c.mask); got != c.want {
			t.Errorf("Classify(%#x) = %v, want %v", c.mask, got, c.want)
		}
	}
}

func TestChipkillSymbolCount(t *testing.T) {
	ck := Chipkill{SymbolBits: 4} // x4 chips: 16 symbols
	// The paper: 25 bitflips in a 64-bit word means at least ⌈25/4⌉ = 7
	// erroneous x4 symbols.
	var mask uint64
	for i := 0; i < 25; i++ {
		mask |= 1 << i
	}
	if n := ck.ErroneousSymbols(mask); n != 7 {
		t.Fatalf("25 consecutive flips span %d x4 symbols, want 7", n)
	}
}

func TestChipkillPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Chipkill{SymbolBits: 5}.Classify(1)
}

func TestAnalyzeFlips(t *testing.T) {
	flips := []bender.Flip{
		// word (7, 0): 2 flips -> 1-2 bucket
		{LogicalRow: 7, Byte: 0, Bit: 1},
		{LogicalRow: 7, Byte: 3, Bit: 0},
		// word (7, 1): 4 flips -> 3-8 bucket
		{LogicalRow: 7, Byte: 8, Bit: 0},
		{LogicalRow: 7, Byte: 8, Bit: 1},
		{LogicalRow: 7, Byte: 9, Bit: 2},
		{LogicalRow: 7, Byte: 15, Bit: 7},
		// word (9, 0): 9 flips -> >8 bucket
		{LogicalRow: 9, Byte: 0, Bit: 0}, {LogicalRow: 9, Byte: 0, Bit: 1},
		{LogicalRow: 9, Byte: 0, Bit: 2}, {LogicalRow: 9, Byte: 0, Bit: 3},
		{LogicalRow: 9, Byte: 1, Bit: 0}, {LogicalRow: 9, Byte: 1, Bit: 1},
		{LogicalRow: 9, Byte: 1, Bit: 2}, {LogicalRow: 9, Byte: 2, Bit: 0},
		{LogicalRow: 9, Byte: 2, Bit: 1},
	}
	st := AnalyzeFlips(flips)
	if st.TotalWords != 3 || st.Words1to2 != 1 || st.Words3to8 != 1 || st.WordsOver8 != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxPerWord != 9 {
		t.Fatalf("max per word = %d", st.MaxPerWord)
	}
}

func TestEvaluateCodes(t *testing.T) {
	// A 9-flip word must be beyond both SEC-DED and x8 Chipkill.
	var flips []bender.Flip
	for i := 0; i < 9; i++ {
		flips = append(flips, bender.Flip{LogicalRow: 1, Byte: i % 8, Bit: uint8(i / 8)})
	}
	out := EvaluateCodes(flips, 8)
	if out.SECDEDCorrected != 0 {
		t.Error("9-flip word cannot be genuinely corrected by SEC-DED")
	}
	if out.ChipkillBeyond != 1 {
		t.Errorf("ChipkillBeyond = %d, want 1", out.ChipkillBeyond)
	}
}
