// Package repro's benchmark harness: one testing.B per table and figure of
// "RowPress: Amplifying Read Disturbance in Modern DRAM Chips" (ISCA 2023).
// Each benchmark regenerates its experiment at a reduced scale and prints
// the resulting rows/series once, so `go test -bench=. -benchmem` both
// times the regenerators and emits the paper-shaped outputs.
//
// Full-scale runs: `go run ./cmd/rowpress run <id> -scale 1`.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/sweep"
)

// benchScale keeps the whole suite within minutes. Figure shape is
// preserved (the anchor tAggON points and module diversity are kept).
const benchScale = 0.05

// benchModules is the module subset used by characterization benches: one
// vulnerable and one resistant die per manufacturer.
var benchModules = []string{"S0", "S3", "H0", "H4", "M0", "M3"}

var printOnce sync.Map

func benchExperiment(b *testing.B, id string, modules []string) {
	b.Helper()
	o := core.Options{Scale: benchScale, Seed: 1, Modules: modules}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := core.Run(id, o)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			fmt.Printf("\n%s\n", report.Text(out))
		}
	}
}

func benchChar(b *testing.B, id string)  { benchExperiment(b, id, benchModules) }
func benchOther(b *testing.B, id string) { benchExperiment(b, id, nil) }

// Characterization figures (§4, §5).

func BenchmarkFig01ACminBoxes(b *testing.B)         { benchChar(b, "fig1") }
func BenchmarkFig06ACminSweep(b *testing.B)         { benchChar(b, "fig6") }
func BenchmarkFig07ACminLinear(b *testing.B)        { benchChar(b, "fig7") }
func BenchmarkFig08RowFraction(b *testing.B)        { benchChar(b, "fig8") }
func BenchmarkFig09TAggONmin(b *testing.B)          { benchChar(b, "fig9") }
func BenchmarkFig10OverlapACmin(b *testing.B)       { benchChar(b, "fig10") }
func BenchmarkFig11OverlapACmax(b *testing.B)       { benchChar(b, "fig11") }
func BenchmarkFig12Direction(b *testing.B)          { benchChar(b, "fig12") }
func BenchmarkFig13TempNormalized(b *testing.B)     { benchChar(b, "fig13") }
func BenchmarkFig14RowFraction80C(b *testing.B)     { benchChar(b, "fig14") }
func BenchmarkFig15TempSweepAC1(b *testing.B)       { benchChar(b, "fig15") }
func BenchmarkFig17DoubleSided(b *testing.B)        { benchChar(b, "fig17") }
func BenchmarkFig18SingleMinusDouble(b *testing.B)  { benchChar(b, "fig18") }
func BenchmarkFig19DataPatterns(b *testing.B)       { benchChar(b, "fig19") }
func BenchmarkFig20DataPatternsDouble(b *testing.B) { benchChar(b, "fig20") }
func BenchmarkFig22ONOFF(b *testing.B)              { benchChar(b, "fig22") }
func BenchmarkFigAppCONOFFAll(b *testing.B)         { benchChar(b, "appC") }
func BenchmarkFigAppERepeatability(b *testing.B)    { benchChar(b, "appE") }
func BenchmarkFigAppF65C(b *testing.B)              { benchChar(b, "appF") }

// Real-system demonstration (§6, Appendix G).

func BenchmarkFig23RealSystem(b *testing.B)       { benchOther(b, "fig23") }
func BenchmarkFig24LatencyHistogram(b *testing.B) { benchOther(b, "fig24") }
func BenchmarkFig49Algorithm2(b *testing.B)       { benchOther(b, "fig49") }

// ECC analysis (§7.1).

func BenchmarkFig25ECCWords(b *testing.B)     { benchChar(b, "fig25") }
func BenchmarkFig26ECCWords70us(b *testing.B) { benchChar(b, "fig26") }

// Mitigation study (§7.3, §7.4, Appendix D).

func BenchmarkTable03Mitigation(b *testing.B)   { benchOther(b, "table3") }
func BenchmarkFig38RowACTIncrease(b *testing.B) { benchOther(b, "fig38") }
func BenchmarkFig39MinOpenIPC(b *testing.B)     { benchOther(b, "fig39") }
func BenchmarkFig40SingleCore(b *testing.B)     { benchOther(b, "fig40") }
func BenchmarkFig41MultiCore(b *testing.B)      { benchOther(b, "fig41") }

// Inventory tables.

func BenchmarkTable01Inventory(b *testing.B)  { benchOther(b, "table1") }
func BenchmarkTable05Summary(b *testing.B)    { benchChar(b, "table5") }
func BenchmarkTable06BERSummary(b *testing.B) { benchChar(b, "table6") }

// Extensions beyond the paper's evaluated set.

func BenchmarkSec63AdaptivePolicy(b *testing.B)     { benchOther(b, "sec63") }
func BenchmarkSec72RowBufferDecoupled(b *testing.B) { benchOther(b, "sec72") }

func BenchmarkSummaryHeadline(b *testing.B) { benchChar(b, "summary") }

// Engine benchmarks: the same module-sharded sweep executed serially and
// at increasing worker counts, cold (every shard computed) and warm
// (every shard served from the content-addressed cache). The cold series
// tracks the sharding speedup on multi-core hardware; the warm number is
// the serving daemon's steady-state cost per request.

// engineBenchID is a representative per-module experiment: one ACmin
// sweep shard per benchModules entry.
const engineBenchID = "fig6"

func benchEngineCold(b *testing.B, workers int) {
	o := core.Options{Scale: benchScale, Seed: 1, Modules: benchModules}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := engine.New(workers, 0) // fresh engine: no shard reuse across iterations
		if _, err := core.RunWith(eng, engineBenchID, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineColdSerial(b *testing.B)   { benchEngineCold(b, 1) }
func BenchmarkEngineCold2Workers(b *testing.B) { benchEngineCold(b, 2) }
func BenchmarkEngineCold4Workers(b *testing.B) { benchEngineCold(b, 4) }
func BenchmarkEngineCold8Workers(b *testing.B) { benchEngineCold(b, 8) }

// Sweep benchmarks: a 2-seed × 3-module-set grid over the same
// representative experiment, overlapping module sets so the batch
// deduplicates shards. Cold measures grid execution on a fresh engine;
// warm is the steady-state cost of re-serving a fully cached grid — the
// daemon's per-/v1/sweep overhead (expansion, batch accounting, merges).
var benchSweepSpec = sweep.Spec{
	Experiment: engineBenchID,
	Scales:     []float64{benchScale},
	Seeds:      []uint64{1, 2},
	ModuleSets: [][]string{{"S0", "S3"}, {"S0", "M0"}, {"H0", "H4"}},
}

func BenchmarkSweepCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := engine.New(4, 0) // fresh engine: every unique shard computed
		res, err := sweep.Run(eng, benchSweepSpec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Aggregate.Failed != 0 || res.Aggregate.Deduplicated == 0 {
			b.Fatalf("aggregate=%+v", res.Aggregate)
		}
	}
}

func BenchmarkSweepWarm(b *testing.B) {
	eng := engine.New(4, 0)
	if _, err := sweep.Run(eng, benchSweepSpec); err != nil {
		b.Fatal(err) // prime the cache outside the timer
	}
	base := eng.Metrics().ShardsExecuted
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(eng, benchSweepSpec); err != nil {
			b.Fatal(err)
		}
	}
	if m := eng.Metrics(); m.ShardsExecuted != base {
		b.Fatalf("warm sweeps re-executed shards: %+v", m)
	}
}

func BenchmarkEngineWarmCache(b *testing.B) {
	o := core.Options{Scale: benchScale, Seed: 1, Modules: benchModules}
	eng := engine.New(4, 0)
	if _, err := core.RunWith(eng, engineBenchID, o); err != nil {
		b.Fatal(err) // prime the cache outside the timer
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunWith(eng, engineBenchID, o); err != nil {
			b.Fatal(err)
		}
	}
	m := eng.Metrics()
	if m.ShardsExecuted != uint64(len(benchModules)) {
		b.Fatalf("warm iterations re-executed shards: %+v", m)
	}
}
