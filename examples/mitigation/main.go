// Mitigation: the paper's §7.4 adaptation methodology — configure
// Graphene-RP and PARA-RP from the device-characterized ACmin-reduction
// curve and measure their performance overhead over the unadapted
// mechanisms on 4-core workload mixes (Table 3).
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/dram"
	"repro/internal/mitigate"
	"repro/internal/report"
	"repro/internal/simperf"
	"repro/internal/workload"
)

func main() {
	// The adaptation inputs: baseline RowHammer threshold and the
	// characterized worst-case ACmin reduction per row-open time.
	fmt.Println("adaptation methodology (§7.4): T'_RH per tmro from the S 8Gb B-die curve")
	var arows [][]string
	for _, tmro := range simperf.TmroLattice {
		ac, err := mitigate.Adapt(simperf.BaseTRH, mitigate.SamsungBDieCurve, tmro)
		if err != nil {
			log.Fatal(err)
		}
		g := mitigate.GrapheneRP(ac, simperf.GrapheneTableSize)
		p := mitigate.PARARP(ac, 1)
		arows = append(arows, []string{
			dram.FormatTime(tmro), fmt.Sprint(ac.TPrimeRH),
			fmt.Sprint(g.Threshold), fmt.Sprintf("%.3f", p.P),
		})
	}
	fmt.Println(report.Table([]string{"tmro", "T'RH", "Graphene-RP T", "PARA-RP p"}, arows))

	// Performance study on 4-core heterogeneous mixes.
	cfg := simperf.DefaultConfig()
	cfg.InstrPerCore = 400_000
	// Flatten the mix groups in sorted name order: the study rows (and
	// the printed table) must not depend on map iteration order.
	groups := simperf.HeterogeneousMixes(1, 7)
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	var mixes [][]workload.Profile
	for _, name := range names {
		mixes = append(mixes, groups[name]...)
	}
	var flat [][]string
	for _, kind := range []simperf.MitigationKind{simperf.KindGraphene, simperf.KindPARA} {
		rows, err := simperf.MitigationStudy(kind, cfg, mixes, 7)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			flat = append(flat, []string{
				kind.String() + "-RP", dram.FormatTime(r.TMro), fmt.Sprint(r.TPrime),
				report.Pct(r.AvgOverhead), report.Pct(r.MaxOverhead),
			})
		}
	}
	fmt.Println(report.Table(
		[]string{"mechanism", "tmro", "T'RH", "avg overhead", "max overhead"}, flat))
	fmt.Println("Paper: Graphene-RP -0.63% avg (4.6% max), PARA-RP 3.6% avg (13.1% max) at their best tmro.")
}
