// Attack: the paper's §6 real-system demonstration — a user-level access
// pattern that induces RowPress bitflips on a simulated TRR-protected
// DDR4 system where conventional RowHammer cannot, plus the §6.3
// verification that multi-cache-block reads keep the DRAM row open.
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/sysarch"
)

func main() {
	geo := dram.Geometry{Banks: 4, RowsPerBank: 4096, RowBytes: 8192}
	sys, err := sysarch.NewDemoSystem(geo, 0xA77AC4)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 (§6.3): verify the memory controller keeps rows open while a
	// program reads consecutive cache blocks.
	lat, err := sys.ProbeRowLatencies(1, 700)
	if err != nil {
		log.Fatal(err)
	}
	var rest float64
	for _, l := range lat[1:] {
		rest += float64(l)
	}
	rest /= float64(len(lat) - 1)
	fmt.Printf("first cache-block access: %d cycles; subsequent: %.0f cycles (gap ~30 => row held open)\n\n",
		lat[0], rest)

	// Step 2 (§6.2): sweep NUM_READS at NUM_AGGR_ACTS=4. NUM_READS=1 is
	// conventional RowHammer; larger values keep the aggressor open longer
	// per activation (RowPress).
	cfg := attack.DefaultConfig()
	cfg.Victims = 96
	var rows [][]string
	for _, reads := range []int{1, 4, 8, 16, 32, 48} {
		cfg.NumReads = reads
		r, err := attack.Run(sys, cfg)
		if err != nil {
			log.Fatal(err)
		}
		kind := "RowPress"
		if reads == 1 {
			kind = "RowHammer"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d (%s)", reads, kind),
			dram.FormatTime(r.TAggON),
			fmt.Sprint(r.Synced),
			fmt.Sprint(r.Bitflips),
			fmt.Sprint(r.RowsWithFlips),
		})
	}
	fmt.Println(report.Table(
		[]string{"NUM_READS", "tAggON", "fits tREFI", "bitflips", "rows w/ flips"}, rows))
	fmt.Println("Takeaway 6: the RowPress program flips bits where RowHammer cannot, peaking at an")
	fmt.Println("intermediate NUM_READS and collapsing once the pattern no longer fits a tREFI window.")
}
