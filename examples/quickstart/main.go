// Quickstart: open a simulated DDR4 module from the paper's chip
// catalogue, press a row (one long activation), and watch physically
// adjacent rows flip — the RowPress phenomenon in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/bender"
	"repro/internal/chipgen"
	"repro/internal/dram"
)

func main() {
	// S3 is a Samsung 8Gb D-die module — the most RowPress-vulnerable die
	// revision in the catalogue (Table 5).
	spec, ok := chipgen.ByID("S3")
	if !ok {
		log.Fatal("module S3 not in catalogue")
	}
	bench, err := bender.New(spec, bender.WithTemperature(80))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("module %s (%s %s), bank %d, %d rows x %d bytes\n",
		spec.ID, spec.Die.Mfr, spec.Die.Name(), bench.Bank(),
		bench.Mod.Geo.RowsPerBank, bench.Mod.Geo.RowBytes)

	// Pick an aggressor row and initialize it and its neighbors with the
	// checkerboard pattern of §4.1.
	const aggressor = 1000
	below, above, _ := bench.RowMap.PhysicalNeighbors(aggressor, 1)
	for _, victim := range []int{below, above} {
		if err := bench.WriteRow(victim, 0x55); err != nil {
			log.Fatal(err)
		}
	}
	if err := bench.WriteRow(aggressor, 0xAA); err != nil {
		log.Fatal(err)
	}

	// RowPress: open the aggressor row ONCE and keep it open for 30 ms
	// (the paper's extreme case — Obsv. 2: ACmin = 1).
	if err := bench.Hammer([]int{aggressor}, 1, 30*dram.Millisecond, 0); err != nil {
		log.Fatal(err)
	}

	total := 0
	for _, victim := range []int{below, above} {
		flips, err := bench.CheckRow(victim, 0x55)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("victim row %d: %d bitflips\n", victim, len(flips))
		for i, f := range flips {
			if i >= 5 {
				fmt.Printf("  ... and %d more\n", len(flips)-5)
				break
			}
			dir := "0->1"
			if f.From {
				dir = "1->0"
			}
			fmt.Printf("  byte %4d bit %d: %s\n", f.Byte, f.Bit, dir)
		}
		total += len(flips)
	}
	if total > 0 {
		fmt.Println("\na single activation broke memory isolation: that is RowPress")
	} else {
		fmt.Println("\nno flips on this row; try another aggressor — vulnerability varies per row")
	}
}
