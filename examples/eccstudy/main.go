// ECC study: the paper's §7.1 argument that error-correcting codes cannot
// stop RowPress — press a module hard at tAggON = 7.8 µs, group the
// resulting bitflips into 64-bit words, and push each erroneous word
// through real SEC-DED(72,64) and Chipkill decoders.
package main

import (
	"fmt"
	"log"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/report"
)

func main() {
	spec, _ := chipgen.ByID("S3") // the most vulnerable die revision
	cfg := characterize.DefaultConfig()
	cfg.RowsToTest = 32

	b, err := characterize.NewBench(spec, cfg, 80)
	if err != nil {
		log.Fatal(err)
	}
	locs := characterize.TestedLocations(cfg.Geometry, cfg.RowsToTest)
	flips, err := characterize.MaxACFlips(b, locs, 7800*dram.Nanosecond, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("module %s (%s), tAggON=7.8us, max activations within 60ms, 80°C\n", spec.ID, spec.Die.Name())
	fmt.Printf("total bitflips: %d\n\n", len(flips))

	st := ecc.AnalyzeFlips(flips)
	fmt.Println(report.Table(
		[]string{"erroneous 64-bit words", "count"},
		[][]string{
			{"1-2 bitflips (within SEC-DED)", fmt.Sprint(st.Words1to2)},
			{"3-8 bitflips", fmt.Sprint(st.Words3to8)},
			{">8 bitflips", fmt.Sprint(st.WordsOver8)},
			{"max bitflips in one word", fmt.Sprint(st.MaxPerWord)},
		}))

	out := ecc.EvaluateCodes(flips, 8)
	fmt.Println(report.Table(
		[]string{"decoder outcome", "words"},
		[][]string{
			{"SEC-DED corrected (true fix)", fmt.Sprint(out.SECDEDCorrected)},
			{"SEC-DED detected-uncorrectable", fmt.Sprint(out.SECDEDDetected)},
			{"SEC-DED SILENT miscorrection", fmt.Sprint(out.SECDEDSilent)},
			{"beyond x8-Chipkill guarantee", fmt.Sprint(out.ChipkillBeyond)},
		}))
	fmt.Println("§7.1: multi-bit RowPress words defeat SEC-DED and Chipkill;")
	fmt.Println("silent miscorrections are the dangerous case (undetected data corruption).")

	// Demonstrate a single word end to end.
	var h ecc.SECDED
	cw := h.Encode(0xDEADBEEF)
	cw.Flip(10)
	data, status := h.Decode(cw)
	fmt.Printf("\nsingle-bit demo: decoded %#x, status %v (correctable)\n", data, status)
}
