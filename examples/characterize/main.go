// Characterize: run the paper's core characterization loop on one module —
// the ACmin-vs-tAggON sweep (Fig. 6), the fraction of vulnerable rows
// (Fig. 8), and the tAggONmin curve (Fig. 9) — and verify the headline
// observations programmatically.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	id := "S0"
	if len(os.Args) > 1 {
		id = os.Args[1]
	}
	spec, ok := chipgen.ByID(id)
	if !ok {
		log.Fatalf("unknown module %q (use S0..S7, H0..H5, M0..M6)", id)
	}
	cfg := characterize.DefaultConfig()
	cfg.RowsToTest = 24
	cfg.Trials = 3

	fmt.Printf("characterizing %s (%s %s) at 50°C, %d rows, %d trials\n\n",
		spec.ID, spec.Die.Mfr, spec.Die.Name(), cfg.RowsToTest, cfg.Trials)

	taggons := []dram.TimePS{
		36 * dram.Nanosecond, 186 * dram.Nanosecond, 1536 * dram.Nanosecond,
		7800 * dram.Nanosecond, 70200 * dram.Nanosecond, 6 * dram.Millisecond,
		30 * dram.Millisecond,
	}
	sweep, err := characterize.ACminSweep(spec, cfg, 50, taggons)
	if err != nil {
		log.Fatal(err)
	}

	var rows [][]string
	var xs, ys []float64
	for _, pt := range sweep {
		vs := pt.ACminValues()
		rows = append(rows, []string{
			dram.FormatTime(pt.TAggON),
			report.Num(stats.Mean(vs)),
			report.Num(stats.Min(vs)),
			report.Pct(pt.FractionWithFlips()),
			report.Pct(pt.FractionOneToZero()),
		})
		if pt.TAggON >= 7800*dram.Nanosecond && len(vs) > 0 {
			xs = append(xs, dram.Seconds(pt.TAggON))
			ys = append(ys, stats.Mean(vs))
		}
	}
	fmt.Println(report.Table(
		[]string{"tAggON", "mean ACmin", "min ACmin", "rows w/ flips", "1->0 flips"}, rows))

	fit := stats.FitLogLog(xs, ys)
	fmt.Printf("log-log slope for tAggON >= 7.8us: %.3f (paper: ~ -1.02)\n\n", fit.Slope)

	pts, err := characterize.TAggONminSweep(spec, cfg, 50, []int{1, 10, 100, 1000})
	if err != nil {
		log.Fatal(err)
	}
	var trows [][]string
	for _, pt := range pts {
		trows = append(trows, []string{
			fmt.Sprintf("AC=%d", pt.AC),
			report.Num(stats.Mean(pt.Values())) + "us",
			report.Num(stats.Min(pt.Values())) + "us",
		})
	}
	fmt.Println(report.Table([]string{"activations", "mean tAggONmin", "min tAggONmin"}, trows))
	fmt.Println("Obsv. 2: at AC=1 the row-open time needed is tens of ms — a single activation suffices.")
}
