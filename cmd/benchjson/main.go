// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON benchmark record (stdout). The record keeps the raw benchmark
// lines verbatim — `jq -r .raw[]` reproduces input benchstat accepts —
// alongside parsed per-benchmark metrics, so both humans and tooling can
// diff performance across commits. CI runs the engine and figure
// benchmarks through it and uploads the result as the BENCH artifact
// tracking the perf trajectory.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson -note "PR 4" > BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Record is the whole artifact.
type Record struct {
	Note      string   `json:"note,omitempty"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Raw       []string `json:"raw"`
	Results   []Result `json:"results"`
}

func main() {
	note := flag.String("note", "", "free-form provenance note stored in the record")
	flag.Parse()

	rec := Record{
		Note:      *note,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec.Raw = append(rec.Raw, line)
		if r, ok := parseLine(line); ok {
			rec.Results = append(rec.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses "BenchmarkX-8  10  123 ns/op  45 B/op  6 allocs/op".
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
