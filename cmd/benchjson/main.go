// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON benchmark record (stdout). The record keeps the raw benchmark
// lines verbatim — `jq -r .raw[]` reproduces input benchstat accepts —
// alongside parsed per-benchmark metrics, so both humans and tooling can
// diff performance across commits. CI runs the engine and figure
// benchmarks through it and uploads the result as the BENCH artifact
// tracking the perf trajectory.
//
// With -baseline, the record is additionally gated against a prior
// BENCH_*.json: the geometric mean of per-benchmark ns/op ratios
// (new/old, over the benchmarks both records share) must stay at or
// under -regress, or the command exits non-zero after writing the
// record — CI's perf-regression tripwire.
//
// Raw ns/op comparisons across machines (a committed baseline vs a
// fresh CI runner) carry the host-speed difference in every ratio, so
// a tight gate would trip on hardware, not code. -calibrate REGEX
// names benchmarks whose code paths the change under test does not
// touch: their geomean ratio estimates the host-speed drift, every
// gated ratio is divided by it, and the gate measures regression
// relative to the same machine's unchanged code — tight enough for a
// 2% zero-overhead gate. The gate takes the smaller of the raw and
// calibrated geomeans: a code regression inflates both (the gated
// paths slow down while the references do not), whereas hardware
// drift inflates only one side — a uniformly slower runner trips raw
// but calibrates away, and a runner whose speedup is lopsided across
// code profiles (CPU-bound references gaining more than I/O- or
// scheduling-bound gated paths) trips calibrated while raw stays
// clean.
//
// -speedup SLOW,FAST computes the ns/op ratio of two benchmarks in the
// new record itself — the worker-scaling check. Both benchmarks run on
// the same process in the same invocation, so the ratio carries no
// host-speed term and needs no calibration. With -min-speedup, the
// command fails when the ratio falls below the floor: CI's guard that
// sub-shard planning keeps the pool busy (a cold 8-worker run must
// stay >= 2x faster than the same plan run serially).
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson -note "PR 5" > BENCH_5.json
//	go test -run=NONE -bench=. -benchmem ./... | benchjson -baseline BENCH_4.json > BENCH_5.json
//	... | benchjson -baseline BENCH_5.json -calibrate 'Search' -regress 1.02 > BENCH_6.json
//	... | benchjson -speedup BenchmarkEngineColdSerial,BenchmarkEngineCold8Workers -min-speedup 2.0 > BENCH_8.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Record is the whole artifact.
type Record struct {
	Note      string   `json:"note,omitempty"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Raw       []string `json:"raw"`
	Results   []Result `json:"results"`
}

func main() {
	note := flag.String("note", "", "free-form provenance note stored in the record")
	baseline := flag.String("baseline", "", "prior benchmark record to gate against (geomean ns/op)")
	regress := flag.Float64("regress", 1.25, "allowed geomean slowdown vs -baseline before failing")
	calibrate := flag.String("calibrate", "", "regex of benchmarks untouched by the change: their geomean ratio divides out of the gate, cancelling host-speed drift vs the baseline machine")
	speedup := flag.String("speedup", "", "SLOW,FAST benchmark pair: print FAST's speedup over SLOW within this record")
	minSpeedup := flag.Float64("min-speedup", 0, "fail when the -speedup ratio falls below this floor (0 = report only)")
	flag.Parse()

	rec := Record{
		Note:      *note,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec.Raw = append(rec.Raw, line)
		if r, ok := parseLine(line); ok {
			rec.Results = append(rec.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *baseline != "" {
		if err := gate(rec, *baseline, *regress, *calibrate); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *speedup != "" {
		if err := gateSpeedup(rec, *speedup, *minSpeedup); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

// gateSpeedup resolves the SLOW,FAST pair inside rec and checks
// slow/fast ns/op against the floor. Both measurements come from one
// `go test -bench` invocation on one machine, so the ratio is a pure
// scaling number — no baseline or calibration involved.
func gateSpeedup(rec Record, pair string, floor float64) error {
	names := strings.Split(pair, ",")
	if len(names) != 2 || names[0] == "" || names[1] == "" {
		return fmt.Errorf("-speedup: want SLOW,FAST benchmark names, got %q", pair)
	}
	find := func(name string) (float64, error) {
		for _, r := range rec.Results {
			if trimProcs(r.Name) == trimProcs(name) {
				return r.NsPerOp, nil
			}
		}
		return 0, fmt.Errorf("-speedup: benchmark %q not in this record", name)
	}
	slow, err := find(names[0])
	if err != nil {
		return err
	}
	fast, err := find(names[1])
	if err != nil {
		return err
	}
	if fast <= 0 {
		return fmt.Errorf("-speedup: %s has non-positive ns/op", names[1])
	}
	ratio := slow / fast
	fmt.Fprintf(os.Stderr, "benchjson: speedup %s -> %s: %.0f -> %.0f ns/op (%.2fx, floor %.2fx)\n",
		trimProcs(names[0]), trimProcs(names[1]), slow, fast, ratio, floor)
	if floor > 0 && ratio < floor {
		return fmt.Errorf("speedup gate: %.2fx below the %.2fx floor — worker parallelism is not paying", ratio, floor)
	}
	return nil
}

// gate compares the new record against the baseline file: the geomean
// of new/old ns/op over shared benchmark names must not exceed allowed.
// Benchmark name suffixes like "-8" (GOMAXPROCS) are stripped so records
// from machines with different core counts still compare. Benchmarks
// matching calPattern are machine-speed references: their geomean ratio
// divides the gated geomean, and the smaller of the raw and calibrated
// geomeans is checked against the threshold — both inflate on a code
// regression, only one on hardware drift.
func gate(rec Record, baselinePath string, allowed float64, calPattern string) error {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Record
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	var calRE *regexp.Regexp
	if calPattern != "" {
		if calRE, err = regexp.Compile(calPattern); err != nil {
			return fmt.Errorf("-calibrate: %v", err)
		}
	}
	old := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		old[trimProcs(r.Name)] = r.NsPerOp
	}
	var logSum, calLogSum float64
	var n, calN int
	for _, r := range rec.Results {
		name := trimProcs(r.Name)
		prev, ok := old[name]
		if !ok || prev <= 0 || r.NsPerOp <= 0 {
			continue
		}
		ratio := r.NsPerOp / prev
		tag := ""
		if calRE != nil && calRE.MatchString(name) {
			tag = "  [calibration]"
			calLogSum += math.Log(ratio)
			calN++
		} else {
			logSum += math.Log(ratio)
			n++
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-40s %12.0f -> %12.0f ns/op (%.2fx)%s\n",
			name, prev, r.NsPerOp, ratio, tag)
	}
	if n == 0 {
		return fmt.Errorf("gate: no gated benchmarks shared with baseline %s", baselinePath)
	}
	gm := math.Exp(logSum / float64(n))
	if calRE != nil {
		if calN == 0 {
			return fmt.Errorf("gate: -calibrate %q matches no benchmark shared with %s", calPattern, baselinePath)
		}
		speed := math.Exp(calLogSum / float64(calN))
		fmt.Fprintf(os.Stderr, "benchjson: host-speed factor %.3fx from %d calibration benchmarks\n", speed, calN)
		if cal := gm / speed; cal < gm {
			fmt.Fprintf(os.Stderr, "benchjson: raw geomean %.3fx, gating on calibrated %.3fx\n", gm, cal)
			gm = cal
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: calibrated geomean %.3fx, gating on raw %.3fx\n", cal, gm)
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: geomean over %d gated benchmarks: %.3fx (allowed %.2fx)\n", n, gm, allowed)
	if gm > allowed {
		return fmt.Errorf("gate: geomean regression %.3fx exceeds %.2fx vs %s", gm, allowed, baselinePath)
	}
	return nil
}

// trimProcs drops the trailing "-N" GOMAXPROCS suffix go test appends.
func trimProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseLine parses "BenchmarkX-8  10  123 ns/op  45 B/op  6 allocs/op".
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
