// Command rowpressvet runs the repository's custom static-analysis
// suite (internal/lint): project-specific analyzers enforcing the
// determinism and concurrency contracts that `go vet` cannot know
// about — unsorted map iteration feeding reports (maprange),
// wall-clock reads in deterministic compute (wallclock), randomness
// outside the seeded stats.RNG (rngsource), shard payload types
// missing gob registration (gobreg), and mixed atomic/plain field
// access (atomicmix).
//
// Usage:
//
//	rowpressvet [-json] [-list] [packages ...]
//
// With no packages, ./... is analyzed. Directories (including testdata
// fixtures, which package patterns never match) may be named
// explicitly. The exit status is 0 when the tree is clean, 1 when any
// unsuppressed finding exists, and 2 on usage or load errors.
//
// Findings are suppressed per line with a mandatory reason:
//
//	//lint:ignore rowpressvet/<analyzer> <reason>
//
// trailing the offending line or alone on the line above it. A
// reason-less or stale directive is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line (suppressed findings included)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rowpressvet [-json] [-list] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-10s %s\n", lint.IgnoreAnalyzer, "suppression-directive hygiene (missing reason, unknown analyzer, stale)")
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := lint.Load(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	for _, pkg := range prog.Pkgs {
		for _, terr := range pkg.Errors {
			fatal(fmt.Errorf("%s: %v", pkg.ImportPath, terr))
		}
	}

	diags := lint.Run(prog, lint.Analyzers())
	active := lint.Active(diags)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			d.File = relPath(cwd, d.File)
			if err := enc.Encode(d); err != nil {
				fatal(err)
			}
		}
	} else {
		for _, d := range active {
			d.File = relPath(cwd, d.File)
			fmt.Println(d.String())
		}
	}
	if len(active) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rowpressvet: %d finding(s)\n", len(active))
		}
		os.Exit(1)
	}
}

// relPath shortens absolute file names to cwd-relative ones for
// readable, stable output.
func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && len(rel) < len(path) {
		return rel
	}
	return path
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rowpressvet: %v\n", err)
	os.Exit(2)
}
