// Command rowpress lists and runs the reproduction's experiments — one
// regenerator per table and figure of "RowPress: Amplifying Read
// Disturbance in Modern DRAM Chips" (ISCA 2023).
//
// Runs execute on the sharded experiment engine: -workers picks the
// concurrency (0 = GOMAXPROCS), and within one invocation completed
// shards are cached per (experiment, options, shard), so repeated or
// overlapping runs of the same experiment are served from memory.
// -serve keeps the process alive after the requested runs and exposes
// the warmed engine over HTTP (same API as rowpressd).
//
// Usage:
//
//	rowpress list
//	rowpress run <id> [-scale 0.5] [-modules S0,S3] [-seed 7] [-workers 8]
//	rowpress all [-scale 0.1] [-workers 8] [-serve :8271]
//	rowpress serve [-addr :8271] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "scale factor in (0,1] for rows/victims/instructions")
	modules := fs.String("modules", "", "comma-separated Table 5 module ids (default: one per die revision)")
	seed := fs.Uint64("seed", 1, "seed for randomized components")
	workers := fs.Int("workers", 0, "concurrent shards per experiment (0 = GOMAXPROCS)")
	serveAddr := fs.String("serve", "", "after running, serve the warmed engine over HTTP on this address")
	addr := fs.String("addr", ":8271", "listen address (serve command)")

	opts := func() core.Options {
		o := core.DefaultOptions()
		o.Scale = *scale
		o.Seed = *seed
		if *modules != "" {
			o.Modules = strings.Split(*modules, ",")
		}
		return o
	}
	eng := func() *engine.Engine { return engine.New(*workers, 0) }

	switch cmd {
	case "list":
		for _, e := range core.List() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "run":
		rest := os.Args[2:]
		if len(rest) == 0 {
			fmt.Fprintln(os.Stderr, "rowpress run <id> [flags]")
			os.Exit(2)
		}
		id := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			os.Exit(2)
		}
		e := eng()
		runOne(e, id, opts())
		maybeServe(e, *serveAddr)
	case "all":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		e := eng()
		for _, exp := range core.List() {
			runOne(e, exp.ID, opts())
		}
		maybeServe(e, *serveAddr)
	case "serve":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		target := *serveAddr
		if target == "" {
			target = *addr
		}
		maybeServe(eng(), target)
	default:
		usage()
		os.Exit(2)
	}
}

func runOne(eng *engine.Engine, id string, o core.Options) {
	start := time.Now()
	out, err := core.RunWith(eng, id, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rowpress: %s: %v\n", id, err)
		os.Exit(1)
	}
	fmt.Printf("# %s (%.1fs)\n%s\n", id, time.Since(start).Seconds(), out)
}

func maybeServe(eng *engine.Engine, addr string) {
	if addr == "" {
		return
	}
	st := eng.Cache().Stats()
	log.Printf("rowpress serving on %s (%d workers, %d cached shard results)",
		addr, eng.Workers(), st.Entries)
	log.Fatal(serve.New(eng).ListenAndServe(addr))
}

func usage() {
	fmt.Fprintln(os.Stderr, `rowpress — RowPress (ISCA 2023) reproduction harness

commands:
  list                 list all experiment ids (figures and tables)
  run <id> [flags]     run one experiment and print its report
  all [flags]          run every experiment
  serve [flags]        serve the experiment engine over HTTP (see rowpressd)

flags: -scale F  -modules S0,S3,...  -seed N  -workers N  -serve ADDR  -addr ADDR`)
}
