// Command rowpress lists and runs the reproduction's experiments — one
// regenerator per table and figure of "RowPress: Amplifying Read
// Disturbance in Modern DRAM Chips" (ISCA 2023).
//
// Usage:
//
//	rowpress list
//	rowpress run <id> [-scale 0.5] [-modules S0,S3] [-seed 7]
//	rowpress all [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "scale factor in (0,1] for rows/victims/instructions")
	modules := fs.String("modules", "", "comma-separated Table 5 module ids (default: one per die revision)")
	seed := fs.Uint64("seed", 1, "seed for randomized components")

	opts := func() core.Options {
		o := core.DefaultOptions()
		o.Scale = *scale
		o.Seed = *seed
		if *modules != "" {
			o.Modules = strings.Split(*modules, ",")
		}
		return o
	}

	switch cmd {
	case "list":
		for _, e := range core.List() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "run":
		rest := os.Args[2:]
		if len(rest) == 0 {
			fmt.Fprintln(os.Stderr, "rowpress run <id> [flags]")
			os.Exit(2)
		}
		id := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			os.Exit(2)
		}
		runOne(id, opts())
	case "all":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		for _, e := range core.List() {
			runOne(e.ID, opts())
		}
	default:
		usage()
		os.Exit(2)
	}
}

func runOne(id string, o core.Options) {
	start := time.Now()
	out, err := core.Run(id, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rowpress: %s: %v\n", id, err)
		os.Exit(1)
	}
	fmt.Printf("# %s (%.1fs)\n%s\n", id, time.Since(start).Seconds(), out)
}

func usage() {
	fmt.Fprintln(os.Stderr, `rowpress — RowPress (ISCA 2023) reproduction harness

commands:
  list                 list all experiment ids (figures and tables)
  run <id> [flags]     run one experiment and print its report
  all [flags]          run every experiment

flags: -scale F  -modules S0,S3,...  -seed N`)
}
