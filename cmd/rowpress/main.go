// Command rowpress lists and runs the reproduction's experiments — one
// regenerator per table and figure of "RowPress: Amplifying Read
// Disturbance in Modern DRAM Chips" (ISCA 2023).
//
// Runs execute on the sharded experiment engine: -workers picks the
// concurrency (0 = GOMAXPROCS), and within one invocation completed
// shards are cached per (experiment, options, shard), so repeated or
// overlapping runs of the same experiment are served from memory.
// -serve keeps the process alive after the requested runs and exposes
// the warmed engine over HTTP (same API as rowpressd).
//
// Runs produce typed result documents (internal/report): -format picks
// the rendering (text, the canonical JSON document, or CSV), -cache-dir
// layers a persistent shard cache under the in-memory one so a later
// invocation (or daemon) warm-starts from disk, and -stats prints a
// cache-tier summary line after the run.
//
// Observability: -trace FILE attaches a span recorder to the engine and
// writes the run's full shard lifecycle (queue wait, tiered cache
// lookups, execution, merge) as Chrome trace-event JSON loadable in
// chrome://tracing or Perfetto. `rowpress profile <id>` runs an
// experiment cold under the recorder and prints the critical-path /
// shard-dominance analysis instead of the experiment report.
//
// Cross-run analytics: -ledger-dir stamps every completed run and sweep
// into a persistent append-only ledger (internal/ledger) — identity
// hashes, wall time, tier-split shard counts, latency aggregates.
// `rowpress history` lists it, `rowpress compare <a> <b>` prints a
// benchstat-style delta between two records (with -gate for CI), and
// `rowpress loadtest` drives a live daemon with concurrent clients and
// records client- and server-side latency quantiles for the same
// window.
//
// Usage:
//
//	rowpress list
//	rowpress scenarios [-format text|csv]
//	rowpress run <id> [-scale 0.5] [-modules S0,S3] [-seed 7] [-workers 8]
//	                  [-format text|json|csv] [-cache-dir DIR] [-stats] [-trace FILE]
//	                  [-ledger-dir DIR]
//	rowpress sweep <id> [-scales 0.05,0.1] [-seeds 1,2] [-modulesets "S0,S3;H0,H4"]
//	                    [-format text|json|csv] [-workers 8] [-ledger-dir DIR]
//	rowpress profile <id> [-scale 0.5] [-workers 8] [-top 10] [-format text|json|csv]
//	                      [-trace FILE]
//	rowpress all [-scale 0.1] [-workers 8] [-serve :8271] [-ledger-dir DIR]
//	rowpress serve [-addr :8271] [-workers 8] [-cache-dir DIR] [-ledger-dir DIR]
//	rowpress history -ledger-dir DIR [-experiment fig6] [-kind run|sweep|loadtest]
//	                  [-limit 20] [-format text|json|csv]
//	rowpress compare <a> <b> -ledger-dir DIR [-threshold 0.1] [-gate determinism,regression]
//	                  [-format text|json|csv]
//	rowpress loadtest -ledger-dir DIR [-target http://localhost:8271] [-clients 8]
//	                  [-requests 64] [-mix fig6,table3] [-scale 0.05] [-format text|json|csv]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "scale factor in (0,1] for rows/victims/instructions")
	modules := fs.String("modules", "", "comma-separated Table 5 module ids (default: one per die revision)")
	seed := fs.Uint64("seed", 1, "seed for randomized components")
	scales := fs.String("scales", "", "comma-separated scale list (sweep command)")
	seeds := fs.String("seeds", "", "comma-separated seed list (sweep command)")
	moduleSets := fs.String("modulesets", "", `semicolon-separated module sets, e.g. "S0,S3;H0,H4" (sweep command)`)
	format := fs.String("format", "text", "output rendering: text|json|csv (run/sweep; scenarios supports text|csv)")
	workers := fs.Int("workers", 0, "concurrent shards per experiment (0 = GOMAXPROCS)")
	serveAddr := fs.String("serve", "", "after running, serve the warmed engine over HTTP on this address")
	addr := fs.String("addr", ":8271", "listen address (serve command)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (run/sweep/all)")
	cacheDir := fs.String("cache-dir", "", "persistent shard-cache directory (warm-starts across invocations and daemons)")
	stats := fs.Bool("stats", false, "print a cache-tier summary line after the run (run/sweep/all)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (run/sweep/all/profile)")
	top := fs.Int("top", 10, "rows in the shard-dominance table (profile command)")
	ledgerDir := fs.String("ledger-dir", "", "persistent run-ledger directory (stamps runs; history/compare/loadtest read it)")
	histExp := fs.String("experiment", "", "filter records by experiment id (history command)")
	histKind := fs.String("kind", "", "filter records by kind: run|sweep|loadtest (history command)")
	limit := fs.Int("limit", 0, "max records to list, newest first; 0 = all (history command)")
	threshold := fs.Float64("threshold", 0, "regression-flag threshold as a fraction; 0 = default (compare command)")
	gate := fs.String("gate", "", "comma-separated findings that fail the exit code: determinism,regression (compare command)")
	clients := fs.Int("clients", 0, "concurrent clients; 0 = default (loadtest command)")
	requests := fs.Int("requests", 0, "total requests across clients; 0 = default (loadtest command)")
	mix := fs.String("mix", "", "comma-separated experiment ids issued round-robin (loadtest command)")
	target := fs.String("target", "http://localhost:8271", "daemon base URL (loadtest command)")

	opts := func() core.Options {
		o := core.DefaultOptions()
		o.Scale = *scale
		o.Seed = *seed
		if *modules != "" {
			o.Modules = strings.Split(*modules, ",")
		}
		return o
	}
	eng := func() *engine.Engine {
		e := engine.New(*workers, 0)
		if *cacheDir != "" {
			dc, err := engine.OpenDiskCache(*cacheDir, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rowpress: -cache-dir: %v\n", err)
				os.Exit(1)
			}
			e.AttachDiskCache(dc)
		}
		if *tracePath != "" {
			e.SetRecorder(obs.NewRecorder(0))
		}
		return e
	}
	// openLedger opens -ledger-dir. Commands that only read the ledger
	// (history, compare) require one; run-executing commands skip
	// stamping when unset.
	openLedger := func(required bool) *ledger.Ledger {
		if *ledgerDir == "" {
			if required {
				fmt.Fprintf(os.Stderr, "rowpress: %s needs -ledger-dir\n", cmd)
				os.Exit(2)
			}
			return nil
		}
		l, err := ledger.Open(*ledgerDir, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rowpress: -ledger-dir: %v\n", err)
			os.Exit(1)
		}
		return l
	}
	// finish writes the trace, flushes the disk-cache index, and prints
	// the -stats summary; every run-executing command calls it before
	// exiting or serving.
	finish := func(e *engine.Engine) {
		if *tracePath != "" {
			if err := writeTrace(e.Recorder(), *tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "rowpress: -trace: %v\n", err)
				os.Exit(1)
			}
		}
		if d := e.Disk(); d != nil {
			if err := d.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "rowpress: cache flush: %v\n", err)
			}
		}
		if *stats {
			// Diagnostics go to stderr so -format json/csv stdout stays
			// machine-parseable.
			fmt.Fprint(os.Stderr, statsLine(e))
		}
	}

	switch cmd {
	case "list":
		for _, e := range core.List() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "scenarios":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		rejectFlags(fs, "scenarios", "scale", "seed", "modules", "scales", "seeds", "modulesets", "cpuprofile", "cache-dir", "stats", "trace", "top",
			"ledger-dir", "experiment", "kind", "limit", "threshold", "gate", "clients", "requests", "mix", "target")
		switch *format {
		case "text":
			fmt.Print(scenario.MatrixText())
		case "csv":
			fmt.Print(scenario.MatrixCSV())
		default:
			fmt.Fprintf(os.Stderr, "rowpress: bad -format %q for scenarios: want text|csv\n", *format)
			os.Exit(2)
		}
	case "run":
		rest := os.Args[2:]
		if len(rest) == 0 {
			fmt.Fprintln(os.Stderr, "rowpress run <id> [flags]")
			os.Exit(2)
		}
		id := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			os.Exit(2)
		}
		rejectFlags(fs, "run", "scales", "seeds", "modulesets", "top",
			"experiment", "kind", "limit", "threshold", "gate", "clients", "requests", "mix", "target")
		switch *format {
		case "text", "json", "csv":
		default:
			fmt.Fprintf(os.Stderr, "rowpress: bad -format %q: want text|json|csv\n", *format)
			os.Exit(2)
		}
		e := eng()
		led := openLedger(false)
		stop := startProfile(*cpuprofile)
		runOne(e, led, id, opts(), *format)
		stop()
		finish(e)
		maybeServe(e, led, *serveAddr)
	case "sweep":
		rest := os.Args[2:]
		if len(rest) == 0 {
			fmt.Fprintln(os.Stderr, "rowpress sweep <id> [flags]")
			os.Exit(2)
		}
		id := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			os.Exit(2)
		}
		rejectFlags(fs, "sweep", "scale", "seed", "modules", "top",
			"experiment", "kind", "limit", "threshold", "gate", "clients", "requests", "mix", "target")
		switch *format {
		case "text", "json", "csv":
		default:
			fmt.Fprintf(os.Stderr, "rowpress: bad -format %q: want text|json|csv\n", *format)
			os.Exit(2)
		}
		spec, err := buildSpec(id, *scales, *seeds, *moduleSets)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rowpress: %v\n", err)
			os.Exit(2)
		}
		e := eng()
		led := openLedger(false)
		stop := startProfile(*cpuprofile)
		runSweep(e, led, spec, *format)
		stop()
		finish(e)
		maybeServe(e, led, *serveAddr)
	case "profile":
		rest := os.Args[2:]
		if len(rest) == 0 {
			fmt.Fprintln(os.Stderr, "rowpress profile <id> [flags]")
			os.Exit(2)
		}
		id := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			os.Exit(2)
		}
		// Profiling measures a cold run: a warm-start cache or an
		// already-serving engine would hide exactly the execution being
		// measured.
		rejectFlags(fs, "profile", "scales", "seeds", "modulesets", "cache-dir", "serve", "stats",
			"ledger-dir", "experiment", "kind", "limit", "threshold", "gate", "clients", "requests", "mix", "target")
		switch *format {
		case "text", "json", "csv":
		default:
			fmt.Fprintf(os.Stderr, "rowpress: bad -format %q: want text|json|csv\n", *format)
			os.Exit(2)
		}
		stop := startProfile(*cpuprofile)
		runProfile(id, opts(), *workers, *top, *format, *tracePath)
		stop()
	case "all":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		rejectFlags(fs, "all", "scales", "seeds", "modulesets", "format", "top",
			"experiment", "kind", "limit", "threshold", "gate", "clients", "requests", "mix", "target")
		e := eng()
		led := openLedger(false)
		stop := startProfile(*cpuprofile)
		for _, exp := range core.List() {
			runOne(e, led, exp.ID, opts(), "text")
		}
		stop()
		finish(e)
		maybeServe(e, led, *serveAddr)
	case "serve":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		// cpuprofile would never stop; stats and format only apply to
		// commands that run experiments and print their output.
		rejectFlags(fs, "serve", "cpuprofile", "stats", "format", "trace", "top",
			"experiment", "kind", "limit", "threshold", "gate", "clients", "requests", "mix", "target")
		listen := *serveAddr
		if listen == "" {
			listen = *addr
		}
		maybeServe(eng(), openLedger(false), listen)
	case "history":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		rejectFlags(fs, "history", "scale", "seed", "modules", "scales", "seeds", "modulesets",
			"workers", "serve", "addr", "cpuprofile", "cache-dir", "stats", "trace", "top",
			"threshold", "gate", "clients", "requests", "mix", "target")
		led := openLedger(true)
		recs := led.Records(ledger.Query{Experiment: *histExp, Kind: *histKind, Limit: *limit})
		switch *format {
		case "json":
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if recs == nil {
				recs = []ledger.Record{}
			}
			if err := enc.Encode(recs); err != nil {
				fmt.Fprintf(os.Stderr, "rowpress: %v\n", err)
				os.Exit(1)
			}
		case "csv":
			fmt.Print(report.CSV(ledger.HistoryDoc(recs, led.Stats())))
		case "text":
			fmt.Print(report.Text(ledger.HistoryDoc(recs, led.Stats())))
		default:
			fmt.Fprintf(os.Stderr, "rowpress: bad -format %q: want text|json|csv\n", *format)
			os.Exit(2)
		}
	case "compare":
		rest := os.Args[2:]
		if len(rest) < 2 || strings.HasPrefix(rest[0], "-") || strings.HasPrefix(rest[1], "-") {
			fmt.Fprintln(os.Stderr, "rowpress compare <a> <b> [flags]   (selectors: record id, or experiment[~N])")
			os.Exit(2)
		}
		selA, selB := rest[0], rest[1]
		if err := fs.Parse(rest[2:]); err != nil {
			os.Exit(2)
		}
		rejectFlags(fs, "compare", "scale", "seed", "modules", "scales", "seeds", "modulesets",
			"workers", "serve", "addr", "cpuprofile", "cache-dir", "stats", "trace", "top",
			"experiment", "kind", "limit", "clients", "requests", "mix", "target")
		led := openLedger(true)
		a, b, err := led.ResolvePair(selA, selB)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rowpress: compare: %v\n", err)
			os.Exit(1)
		}
		d := ledger.Compare(a, b, ledger.CompareOptions{Threshold: *threshold})
		switch *format {
		case "json":
			bts, err := report.JSON(d.Doc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rowpress: %v\n", err)
				os.Exit(1)
			}
			os.Stdout.Write(bts)
		case "csv":
			fmt.Print(report.CSV(d.Doc))
		case "text":
			fmt.Print(report.Text(d.Doc))
		default:
			fmt.Fprintf(os.Stderr, "rowpress: bad -format %q: want text|json|csv\n", *format)
			os.Exit(2)
		}
		failed := false
		for _, g := range splitList(*gate, ",") {
			switch g {
			case "determinism":
				if d.DeterminismViolation {
					fmt.Fprintln(os.Stderr, "rowpress: compare: determinism gate failed")
					failed = true
				}
			case "regression":
				if d.Regression {
					fmt.Fprintln(os.Stderr, "rowpress: compare: regression gate failed")
					failed = true
				}
			default:
				fmt.Fprintf(os.Stderr, "rowpress: bad -gate %q: want determinism|regression\n", g)
				os.Exit(2)
			}
		}
		if failed {
			os.Exit(1)
		}
	case "loadtest":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		rejectFlags(fs, "loadtest", "modules", "scales", "seeds", "modulesets",
			"workers", "serve", "addr", "cpuprofile", "cache-dir", "stats", "trace", "top",
			"experiment", "kind", "limit", "threshold", "gate")
		switch *format {
		case "text", "json", "csv":
		default:
			fmt.Fprintf(os.Stderr, "rowpress: bad -format %q: want text|json|csv\n", *format)
			os.Exit(2)
		}
		cfg := ledger.LoadTestConfig{
			BaseURL:  *target,
			Clients:  *clients,
			Requests: *requests,
			Mix:      splitList(*mix, ","),
			Seed:     *seed,
		}
		// -scale defaults to 1.0 for run commands; for a load test an
		// unset flag should mean the harness default, not a full run.
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				cfg.Scale = *scale
			}
		})
		rec, doc, err := ledger.LoadTest(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rowpress: loadtest: %v\n", err)
			os.Exit(1)
		}
		if led := openLedger(false); led != nil {
			if _, aerr := led.Append(rec); aerr != nil {
				fmt.Fprintf(os.Stderr, "rowpress: ledger: %v\n", aerr)
			}
			led.Close()
		}
		switch *format {
		case "json":
			bts, err := report.JSON(doc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rowpress: %v\n", err)
				os.Exit(1)
			}
			os.Stdout.Write(bts)
		case "csv":
			fmt.Print(report.CSV(doc))
		default:
			fmt.Print(report.Text(doc))
		}
	default:
		usage()
		os.Exit(2)
	}
}

// startProfile begins CPU profiling into path (no-op when empty) and
// returns the stop function. Profiles cover the measured runs only, not
// any serving phase that follows.
func startProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rowpress: -cpuprofile: %v\n", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "rowpress: -cpuprofile: %v\n", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rowpress: -cpuprofile: %v\n", err)
		}
	}
}

// runOne executes one experiment and renders its document. With a
// ledger attached it also stamps the durable run record: identity
// hashes, tier-split shard counts, the run's metrics window, and the
// profile summary when tracing is on. Failed runs are recorded too —
// a history that omits failures cannot explain a trend break.
func runOne(eng *engine.Engine, led *ledger.Ledger, id string, o core.Options, format string) {
	start := time.Now()
	var onShard func(engine.ShardEvent)
	var tiers func() ledger.TierCounts
	var before engine.Metrics
	var spanLo int
	if led != nil {
		before = eng.Metrics()
		onShard, tiers = ledger.ObserveShards()
		if rec := eng.Recorder(); rec != nil {
			spanLo = len(rec.Snapshot())
		}
	}
	doc, st, err := core.RunObserved(eng, id, o, onShard)
	if led != nil {
		lr := ledger.Record{
			Kind:        ledger.KindRun,
			Experiment:  id,
			OptionsHash: o.Hash(),
			WallMS:      float64(time.Since(start)) / float64(time.Millisecond),
			Shards:      st.Shards,
			Workers:     eng.Workers(),
			SubShards:   st.SubExecuted,
			Tiers:       tiers(),
		}
		lr.FillWindow(eng.Metrics().Sub(before))
		if err != nil {
			lr.Error = err.Error()
		} else {
			lr.DocHash = ledger.DocHash(doc)
		}
		if rec := eng.Recorder(); rec != nil {
			spans := rec.Snapshot()
			if spanLo > len(spans) {
				spanLo = 0 // trace ring overflowed; analyze what remains
			}
			lr.Profile = ledger.ProfileFrom(obs.Analyze(spans[spanLo:]), eng.Workers())
		}
		if _, aerr := led.Append(lr); aerr != nil {
			fmt.Fprintf(os.Stderr, "rowpress: ledger: %v\n", aerr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rowpress: %s: %v\n", id, err)
		os.Exit(1)
	}
	switch format {
	case "json":
		b, err := report.JSON(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rowpress: %s: %v\n", id, err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
	case "csv":
		fmt.Print(report.CSV(doc))
	default:
		fmt.Printf("# %s (%.1fs)\n%s\n", id, time.Since(start).Seconds(), report.Text(doc))
	}
}

// runProfile executes one experiment cold under a span recorder and
// prints the critical-path / shard-dominance analysis instead of the
// experiment report. The engine is always fresh (no warm-start cache,
// no prior runs), so every shard actually executes and the profile
// measures real work.
func runProfile(id string, o core.Options, workers, top int, format, tracePath string) {
	e := engine.New(workers, 0)
	rec := obs.NewRecorder(0)
	e.SetRecorder(rec)
	start := time.Now()
	if _, err := core.RunWith(e, id, o); err != nil {
		fmt.Fprintf(os.Stderr, "rowpress: profile %s: %v\n", id, err)
		os.Exit(1)
	}
	wall := time.Since(start)
	spans := rec.Snapshot()
	doc := obs.Analyze(spans).Doc(top)
	doc.Experiment = id
	doc.Title = "Execution profile: " + id
	doc.Params = append(doc.Params,
		report.Param{Key: "scale", Value: fmt.Sprintf("%g", o.Scale)},
		report.Param{Key: "workers", Value: strconv.Itoa(e.Workers())},
	)
	switch format {
	case "json":
		b, err := report.JSON(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rowpress: profile %s: %v\n", id, err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
	case "csv":
		fmt.Print(report.CSV(doc))
	default:
		fmt.Printf("# profile %s (%.1fs wall, %d spans)\n%s\n", id, wall.Seconds(), len(spans), report.Text(doc))
	}
	if tracePath != "" {
		if err := writeTrace(rec, tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "rowpress: -trace: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTrace dumps the recorder's spans as Chrome trace-event JSON.
func writeTrace(rec *obs.Recorder, path string) error {
	if rec == nil {
		return fmt.Errorf("engine has no span recorder attached")
	}
	if d := rec.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "rowpress: trace ring overflowed; oldest %d spans dropped\n", d)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, rec.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// statsLine summarizes both cache tiers — plus queue wait and
// tier-attributed lookup latency — after the measured runs: the
// operator-facing view of the /v1/metrics counters.
func statsLine(eng *engine.Engine) string {
	m := eng.Metrics()
	line := fmt.Sprintf("# stats: runs=%d shards=%d executed=%d cache_hits=%d | mem entries=%d hits=%d misses=%d evictions=%d",
		m.Runs, m.ShardsPlanned, m.ShardsExecuted, m.CacheHits,
		m.Mem.Entries, m.Mem.Hits, m.Mem.Misses, m.Mem.Evictions)
	if eng.Disk() != nil {
		line += fmt.Sprintf(" | disk entries=%d bytes=%d hits=%d misses=%d evictions=%d writes=%d write_errors=%d",
			m.Disk.Entries, m.Disk.Bytes, m.Disk.Hits, m.Disk.Misses, m.Disk.Evictions,
			m.Disk.Writes, m.Disk.WriteErrors)
	}
	line += fmt.Sprintf(" | queue waits=%d avg=%s | lookup mem=%d/%s disk=%d/%s miss=%d/%s",
		m.QueueWait.Count, m.QueueWait.Avg().Round(time.Microsecond),
		m.MemLookup.Count, m.MemLookup.Avg().Round(time.Microsecond),
		m.DiskLookup.Count, m.DiskLookup.Avg().Round(time.Microsecond),
		m.MissLookup.Count, m.MissLookup.Avg().Round(time.Microsecond))
	return line + "\n"
}

// rejectFlags exits when any of the named flags was set explicitly: the
// run and sweep grammars are near-identical (-scale vs -scales), so
// silently ignoring the wrong variant would run something very
// different from what the user asked for.
func rejectFlags(fs *flag.FlagSet, cmd string, names ...string) {
	bad := make(map[string]bool, len(names))
	for _, n := range names {
		bad[n] = true
	}
	fs.Visit(func(f *flag.Flag) {
		if bad[f.Name] {
			fmt.Fprintf(os.Stderr, "rowpress: -%s does not apply to %q (see `rowpress` usage)\n", f.Name, cmd)
			os.Exit(2)
		}
	})
}

// buildSpec parses the sweep flag grammar: comma-separated scales and
// seeds, semicolon-separated module sets (each itself comma-separated;
// an empty set selects the representative modules).
func buildSpec(id, scales, seeds, moduleSets string) (sweep.Spec, error) {
	spec := sweep.Spec{Experiment: id}
	for _, v := range splitList(scales, ",") {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return spec, fmt.Errorf("bad scale %q: %v", v, err)
		}
		spec.Scales = append(spec.Scales, f)
	}
	for _, v := range splitList(seeds, ",") {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("bad seed %q: %v", v, err)
		}
		spec.Seeds = append(spec.Seeds, u)
	}
	for _, set := range splitList(moduleSets, ";") {
		spec.ModuleSets = append(spec.ModuleSets, strings.Split(set, ","))
	}
	return spec, nil
}

// splitList splits on sep, trimming whitespace and dropping empties.
func splitList(s, sep string) []string {
	var out []string
	for _, v := range strings.Split(s, sep) {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func runSweep(eng *engine.Engine, led *ledger.Ledger, spec sweep.Spec, format string) {
	start := time.Now()
	var before engine.Metrics
	if led != nil {
		before = eng.Metrics()
	}
	res, err := sweep.Run(eng, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rowpress: sweep %s: %v\n", spec.Experiment, err)
		os.Exit(1)
	}
	if led != nil {
		a := res.Aggregate
		docs := make([]*report.Doc, len(res.Points))
		for i := range res.Points {
			docs[i] = res.Points[i].Doc
		}
		w := eng.Metrics().Sub(before)
		lr := ledger.Record{
			Kind:        ledger.KindSweep,
			Experiment:  res.Experiment,
			OptionsHash: ledger.HashJSON("sweep", spec),
			DocHash:     ledger.DocsHash(docs),
			WallMS:      a.WallMS,
			Shards:      a.ShardRefs,
			Workers:     eng.Workers(),
			SubShards:   a.SubExecuted,
			Tiers:       ledger.SweepTiers(w, a.Executed, a.ShardRefs),
		}
		if a.Failed > 0 {
			lr.Error = fmt.Sprintf("%d/%d points failed", a.Failed, a.Points)
		}
		lr.FillWindow(w)
		if _, aerr := led.Append(lr); aerr != nil {
			fmt.Fprintf(os.Stderr, "rowpress: ledger: %v\n", aerr)
		}
	}
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "rowpress: %v\n", err)
			os.Exit(1)
		}
	case "csv":
		fmt.Print(res.CSV())
	default: // "text"; format is validated before the sweep runs
		fmt.Printf("# sweep %s (%d points, %.1fs)\n%s", spec.Experiment,
			res.Aggregate.Points, time.Since(start).Seconds(), res.Text())
	}
	if res.Aggregate.Failed > 0 {
		fmt.Fprintf(os.Stderr, "rowpress: sweep %s: %d/%d points failed\n",
			spec.Experiment, res.Aggregate.Failed, res.Aggregate.Points)
		os.Exit(1)
	}
}

func maybeServe(eng *engine.Engine, led *ledger.Ledger, addr string) {
	if addr == "" {
		return
	}
	var sopts []serve.Option
	if led != nil {
		sopts = append(sopts, serve.WithLedger(led))
	}
	st := eng.Cache().Stats()
	log.Printf("rowpress serving on %s (%d workers, %d cached shard results)",
		addr, eng.Workers(), st.Entries)
	log.Fatal(serve.New(eng, sopts...).ListenAndServe(addr))
}

func usage() {
	fmt.Fprintln(os.Stderr, `rowpress — RowPress (ISCA 2023) reproduction harness

commands:
  list                 list all experiment ids (figures and tables)
  scenarios [flags]    list the attack-scenario matrix (-format text|csv)
  run <id> [flags]     run one experiment and print its report
  sweep <id> [flags]   run a batched parameter grid over one experiment
  profile <id> [flags] run one experiment cold and print the critical-path /
                       shard-dominance analysis (-top N rows, -trace FILE)
  all [flags]          run every experiment
  serve [flags]        serve the experiment engine over HTTP (see rowpressd)
  history [flags]      list the persistent run ledger (-ledger-dir required;
                       -experiment ID, -kind run|sweep|loadtest, -limit N)
  compare <a> <b>      benchstat-style delta between two ledger records;
                       selectors are a record id or experiment[~N] (N-th newest);
                       -threshold F, -gate determinism,regression exits 1 on a hit
  loadtest [flags]     drive a live daemon with concurrent clients and record
                       client+server latency quantiles into the ledger
                       (-target URL, -clients N, -requests N, -mix id,id,...)

flags: -scale F  -modules S0,S3,...  -seed N  -workers N  -serve ADDR  -addr ADDR  -cpuprofile FILE
       -format text|json|csv  -cache-dir DIR (persistent warm-start cache)  -stats (cache-tier summary)
       -trace FILE (Chrome trace-event JSON of the shard lifecycle; chrome://tracing, Perfetto)
       -ledger-dir DIR (append-only run ledger; run/sweep/all stamp records, history/compare/loadtest read)
sweep flags: -scales F,F,...  -seeds N,N,...  -modulesets "S0,S3;H0,H4"`)
}
