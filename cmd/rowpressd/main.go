// Command rowpressd is the RowPress reproduction's serving daemon: it
// exposes every registered experiment regenerator over HTTP, executing
// runs on a sharded worker-pool engine and memoizing completed shards in
// a content-addressed cache so repeated and overlapping requests are
// served from memory. With -cache-dir, completed shards are also
// persisted to a size-bounded on-disk store, so a restarted daemon
// answers previously computed runs without re-executing anything.
//
// Observability: every request is logged through log/slog (-log-level
// picks the floor; request id, method, path, status, duration, shard
// counts), /metrics serves the Prometheus text exposition, /v1/healthz
// answers liveness/readiness probes (readiness flips to 503 while the
// daemon drains), and -pprof exposes net/http/pprof under /debug/pprof/.
//
// The daemon shuts down gracefully: SIGINT/SIGTERM mark the server
// draining (readiness goes 503 so load balancers stop routing) and stop
// the listener, in-flight requests drain through http.Server.Shutdown
// (bounded by -drain-timeout), and the disk-cache index is flushed
// before exit.
//
// With -ledger-dir, every completed run and sweep is additionally
// stamped into a persistent append-only run ledger (internal/ledger):
// identity hashes, wall time, tier-split shard counts, and latency
// aggregates survive restarts, /v1/results warm-starts from the ledger
// tail, and /v1/history + /v1/compare serve cross-run analytics over it.
//
// With -peers, the daemon becomes a fabric coordinator: shard keys are
// consistent-hashed across the peer set (internal/fabric) and
// non-locally-owned shards are dispatched to the owning peer over
// /v1/shard, with that peer's mem/disk tiers acting as a shared remote
// cache. Peers are plain rowpressd daemons — they need no flags of
// their own, and a symmetric fleet lists every other member in each
// daemon's -peers. Failure semantics: bounded retries with backoff
// (-fabric-retries, -fabric-backoff), hedged requests against the next
// ring member when the owner is slower than its own observed latency
// quantile (-hedge-quantile, -hedge-min), a per-peer circuit breaker,
// and graceful local-execute fallback — a degraded fleet is slower,
// never wrong.
//
// Usage:
//
//	rowpressd [-addr :8271] [-workers N] [-cache ENTRIES] [-warm 0.05]
//	          [-cache-dir DIR] [-cache-disk-bytes N] [-drain-timeout 10s]
//	          [-ledger-dir DIR] [-ledger-bytes N]
//	          [-peers URL,URL] [-fabric-retries N] [-fabric-backoff 25ms]
//	          [-hedge-quantile 0.95] [-hedge-min 20ms]
//	          [-log-level info] [-pprof]
//
// Endpoints: /healthz, /v1/healthz, /metrics, /v1/experiments,
// /v1/scenarios, /v1/run/{exp}, /v1/sweep, /v1/shard, /v1/results,
// /v1/metrics, /v1/history, /v1/compare.
// Examples:
//
//	curl 'localhost:8271/v1/run/fig6?scale=0.1&modules=S0,S3&format=text'
//	curl 'localhost:8271/v1/run/fig6?scale=0.1&format=ndjson'   # stream shard events
//	curl 'localhost:8271/v1/scenarios?format=csv'
//	curl -X POST 'localhost:8271/v1/sweep?format=csv' \
//	  -d '{"experiment":"fig6","scales":[0.05,0.1],"module_sets":[["S0","S3"],["H0","H4"]]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/ledger"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8271", "listen address")
	workers := flag.Int("workers", 0, "concurrent shards (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", engine.DefaultCacheEntries, "max cached shard results (in-memory tier)")
	cacheDir := flag.String("cache-dir", "", "persistent shard-cache directory (warm-start across restarts)")
	cacheDiskBytes := flag.Int64("cache-disk-bytes", engine.DefaultDiskCacheBytes, "disk-cache size bound in bytes")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound for in-flight requests")
	ledgerDir := flag.String("ledger-dir", "", "persistent run-ledger directory (run history, /v1/history, /v1/compare)")
	ledgerBytes := flag.Int64("ledger-bytes", 0, "run-ledger size bound in bytes (0 = default)")
	warm := flag.Float64("warm", 0, "if > 0, pre-warm the cache by running every experiment at this scale before serving")
	peers := flag.String("peers", "", "comma-separated peer URLs; enables fabric coordinator mode (consistent-hash shard dispatch)")
	fabricRetries := flag.Int("fabric-retries", 1, "extra attempts per peer dispatch before falling back")
	fabricBackoff := flag.Duration("fabric-backoff", 25*time.Millisecond, "base retry backoff (doubles per attempt)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.95, "peer-latency quantile that arms a hedged request to the next ring member")
	hedgeMin := flag.Duration("hedge-min", 20*time.Millisecond, "floor for the hedge delay")
	logLevel := flag.String("log-level", "info", "structured request-log floor: debug|info|warn|error|off")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger, err := buildLogger(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rowpressd: %v\n", err)
		os.Exit(2)
	}

	eng := engine.New(*workers, *cacheEntries)
	if *cacheDir != "" {
		dc, err := engine.OpenDiskCache(*cacheDir, *cacheDiskBytes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rowpressd: -cache-dir: %v\n", err)
			os.Exit(1)
		}
		eng.AttachDiskCache(dc)
		st := dc.Stats()
		log.Printf("disk cache %s: %d entries, %d bytes (bound %d)", dc.Dir(), st.Entries, st.Bytes, st.MaxBytes)
	}
	if *warm > 0 {
		o := core.DefaultOptions()
		o.Scale = *warm
		for _, e := range core.List() {
			if _, err := core.RunWith(eng, e.ID, o); err != nil {
				fmt.Fprintf(os.Stderr, "rowpressd: warm %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		st := eng.Cache().Stats()
		log.Printf("cache warmed: %d shard results at scale %g", st.Entries, *warm)
	}

	sopts := []serve.Option{serve.WithLogger(logger)}
	if *peers != "" {
		var urls []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				urls = append(urls, p)
			}
		}
		fc, err := fabric.New(fabric.Config{
			Peers:         urls,
			Retries:       *fabricRetries,
			RetryBackoff:  *fabricBackoff,
			HedgeQuantile: *hedgeQuantile,
			HedgeMin:      *hedgeMin,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rowpressd: -peers: %v\n", err)
			os.Exit(1)
		}
		eng.AttachRemote(fc)
		sopts = append(sopts, serve.WithFabric(fc))
		log.Printf("fabric coordinator: %d peers, retries %d, hedge q%.2f (floor %s)",
			len(fc.Peers()), *fabricRetries, *hedgeQuantile, *hedgeMin)
	}
	var led *ledger.Ledger
	if *ledgerDir != "" {
		led, err = ledger.Open(*ledgerDir, *ledgerBytes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rowpressd: -ledger-dir: %v\n", err)
			os.Exit(1)
		}
		st := led.Stats()
		log.Printf("run ledger %s: %d records, %d bytes (%d corrupt lines skipped)",
			*ledgerDir, st.Records, st.Bytes, st.Skipped)
		sopts = append(sopts, serve.WithLedger(led))
	}
	if *pprofOn {
		sopts = append(sopts, serve.WithPprof())
		log.Printf("pprof enabled on /debug/pprof/")
	}
	s := serve.New(eng, sopts...)
	srv := &http.Server{Addr: *addr, Handler: s, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rowpressd serving %d experiments on %s (%d workers, %d-entry cache)",
		len(core.List()), *addr, eng.Workers(), *cacheEntries)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills immediately

	s.SetDraining(true) // /v1/healthz readiness answers 503 from here on
	log.Printf("shutting down: draining in-flight requests (up to %s)", *drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	if dc := eng.Disk(); dc != nil {
		if err := dc.Flush(); err != nil {
			log.Printf("disk-cache flush: %v", err)
		} else {
			log.Printf("disk-cache index flushed (%d entries)", dc.Stats().Entries)
		}
	}
	if led != nil {
		if err := led.Close(); err != nil {
			log.Printf("ledger close: %v", err)
		} else {
			log.Printf("run ledger closed (%d records)", led.Stats().Records)
		}
	}
}

// buildLogger maps -log-level onto a stderr slog text logger; "off"
// discards request logs entirely (daemon lifecycle logs still print
// through the standard log package).
func buildLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off":
		return slog.New(slog.DiscardHandler), nil
	default:
		return nil, fmt.Errorf("bad -log-level %q: want debug|info|warn|error|off", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}
