// Command rowpressd is the RowPress reproduction's serving daemon: it
// exposes every registered experiment regenerator over HTTP, executing
// runs on a sharded worker-pool engine and memoizing completed shards in
// a content-addressed cache so repeated and overlapping requests are
// served from memory.
//
// Usage:
//
//	rowpressd [-addr :8271] [-workers N] [-cache ENTRIES] [-warm 0.05]
//
// Endpoints: /healthz, /v1/experiments, /v1/scenarios, /v1/run/{exp},
// /v1/sweep, /v1/results, /v1/metrics. Examples:
//
//	curl 'localhost:8271/v1/run/fig6?scale=0.1&modules=S0,S3&format=text'
//	curl -X POST 'localhost:8271/v1/sweep?format=csv' \
//	  -d '{"experiment":"fig6","scales":[0.05,0.1],"module_sets":[["S0","S3"],["H0","H4"]]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8271", "listen address")
	workers := flag.Int("workers", 0, "concurrent shards (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", engine.DefaultCacheEntries, "max cached shard results")
	warm := flag.Float64("warm", 0, "if > 0, pre-warm the cache by running every experiment at this scale before serving")
	flag.Parse()

	eng := engine.New(*workers, *cacheEntries)
	if *warm > 0 {
		o := core.DefaultOptions()
		o.Scale = *warm
		for _, e := range core.List() {
			if _, err := core.RunWith(eng, e.ID, o); err != nil {
				fmt.Fprintf(os.Stderr, "rowpressd: warm %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		st := eng.Cache().Stats()
		log.Printf("cache warmed: %d shard results at scale %g", st.Entries, *warm)
	}

	s := serve.New(eng)
	log.Printf("rowpressd serving %d experiments on %s (%d workers, %d-entry cache)",
		len(core.List()), *addr, eng.Workers(), *cacheEntries)
	log.Fatal(s.ListenAndServe(*addr))
}
